"""Register-footprint pass: inferred write footprints vs. declarations.

PR 2's canonicalizer and PR 5's problem registry both stake soundness on
*hand-declared* facts about what each automaton writes: the symmetry
hooks claim which renamings reach register values, and the specs claim
which provenance classes those values come from.  This pass closes the
loop: the dataflow IR (:mod:`repro.lint.ir`) *infers* each shipped
automaton's write footprint from its ``next_op`` body, and any
disagreement with the declarations is a build-breaking finding.

Three rules:

``undeclared`` (error)
    A shipped automaton class has no
    :class:`~repro.problems.spec.AutomatonFootprint` declaration in any
    :class:`~repro.problems.spec.ProblemSpec` (or two specs declare
    conflicting footprints for the same class).

``drift`` (error)
    The inferred footprint differs from the declared one.  Like PR 5's
    count-drift test, the fix is to update the declaration *after
    reading the diff* — the declaration is the reviewed statement of
    intent, the inference is the code's actual behaviour.

``hook-coupling`` (error)
    The automaton has a trusted symmetry-hook bundle
    (:func:`repro.runtime.canonical.hook_claims`) whose
    ``rename_register_value`` does not rename a class of values the
    automaton demonstrably writes: pid writes require pid renaming,
    input writes require value renaming.  This is exactly the coupling
    the orbit-minimisation bisimulation argument depends on.

``skipped`` (info)
    Source unavailable — the class cannot be analysed statically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding
from repro.lint.ir import analyze_class
from repro.lint.registry import shipped_automaton_classes
from repro.problems.spec import AutomatonFootprint
from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.canonical import hook_claims

PASS = "footprints"


def infer_footprint(
    cls: Type[ProcessAutomaton],
) -> Optional[AutomatonFootprint]:
    """The statically inferred footprint, or ``None`` without source."""
    analysis = analyze_class(cls)
    return None if analysis is None else analysis.footprint()


def declared_footprints() -> Tuple[Dict[str, AutomatonFootprint], List[Finding]]:
    """The registry's declarations, unioned by automaton qualname.

    Two specs may declare the same class (shared automata) as long as
    they agree; a conflict is reported as an ``undeclared``-rule error
    (the class effectively has no single trusted declaration).
    """
    from repro.problems.registry import problem_specs

    declared: Dict[str, AutomatonFootprint] = {}
    findings: List[Finding] = []
    for spec in problem_specs():
        for qualname, footprint in spec.footprints:
            previous = declared.get(qualname)
            if previous is not None and previous != footprint:
                findings.append(
                    Finding(
                        pass_name=PASS,
                        severity="error",
                        subject=qualname,
                        detail=(
                            f"conflicting footprint declarations: "
                            f"{previous.describe()} vs {footprint.describe()} "
                            f"(latter from spec {spec.key!r})"
                        ),
                        rule="undeclared",
                    )
                )
            declared[qualname] = footprint
    return declared, findings


def _diff(declared: AutomatonFootprint, inferred: AutomatonFootprint) -> str:
    """Field-by-field description of a drift (only differing fields)."""
    parts: List[str] = []
    for name in (
        "writes_pid",
        "writes_input",
        "writes_memory",
        "writes_counter",
        "writes_config",
        "write_constants",
        "index_constants",
        "symbolic_indexing",
        "forwards_values",
        "no_ops",
    ):
        a, b = getattr(declared, name), getattr(inferred, name)
        if a != b:
            parts.append(f"{name}: declared {a!r}, inferred {b!r}")
    return "; ".join(parts)


def check_class(
    cls: Type[ProcessAutomaton],
    declared: Optional[AutomatonFootprint] = None,
) -> List[Finding]:
    """Footprint findings for one automaton class.

    ``declared`` defaults to the registry's declaration for the class;
    passing one explicitly lets tests exercise the drift rule directly.
    """
    subject = cls.__qualname__
    inferred = infer_footprint(cls)
    if inferred is None:
        return [
            Finding(
                pass_name=PASS,
                severity="info",
                subject=subject,
                detail="source unavailable — skipped",
                rule="skipped",
            )
        ]
    findings: List[Finding] = []
    if declared is None:
        registry_declared, _ = declared_footprints()
        declared = registry_declared.get(subject)
    if declared is None:
        findings.append(
            Finding(
                pass_name=PASS,
                severity="error",
                subject=subject,
                detail=(
                    f"no AutomatonFootprint declared in any ProblemSpec; "
                    f"inferred {inferred.describe()}"
                ),
                rule="undeclared",
            )
        )
    elif declared != inferred:
        findings.append(
            Finding(
                pass_name=PASS,
                severity="error",
                subject=subject,
                detail=f"footprint drift — {_diff(declared, inferred)}",
                rule="drift",
            )
        )
    claims = hook_claims(cls)
    if claims is not None:
        if inferred.writes_pid and not claims.renames_pids:
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error",
                    subject=subject,
                    detail=(
                        "writes process identifiers to registers but its "
                        "trusted rename_register_value hook never applies "
                        "pids_renamed — the symmetry reduction would "
                        "mis-canonicalize pid-carrying registers"
                    ),
                    rule="hook-coupling",
                )
            )
        if inferred.writes_input and not claims.renames_values:
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error",
                    subject=subject,
                    detail=(
                        "writes input values to registers but its trusted "
                        "rename_register_value hook never applies "
                        "values_renamed — the symmetry reduction would "
                        "mis-canonicalize input-carrying registers"
                    ),
                    rule="hook-coupling",
                )
            )
    return findings


def run_footprint_pass(
    classes: Optional[Iterable[Type[ProcessAutomaton]]] = None,
) -> List[Finding]:
    """Run the footprint checker over ``classes`` (default: all shipped).

    With the default class list the registry's declaration conflicts are
    reported too; an explicit class list checks just those classes.
    """
    findings: List[Finding] = []
    if classes is None:
        target: Sequence[Type[ProcessAutomaton]] = shipped_automaton_classes()
        declared, conflicts = declared_footprints()
        findings.extend(conflicts)
    else:
        target = list(classes)
        declared, _ = declared_footprints()
    for cls in target:
        findings.extend(check_class(cls, declared.get(cls.__qualname__)))
    return findings
