"""What the lint passes run over — derived from :mod:`repro.problems`.

Static passes analyse *classes*; dynamic passes (runtime anonymity
audit, pc reachability, race sanitizer) need concrete *instances* small
enough to explore exhaustively.  Both views are now projections of the
problem registry (the single source of truth also feeding ``python -m
repro verify``, the sweep harness and the exploration benchmark):

* :func:`shipped_automaton_classes` returns the registry-declared
  automaton classes (the drift test in
  ``tests/problems/test_registry.py`` walks the subclass tree over the
  shipped modules and fails if the declaration ever falls out of sync,
  so counts in the lint summary cannot silently drift);
* :func:`lint_targets` adapts the registry's ``"lint"``-role instances
  into the historical :class:`LintTarget` shape the passes consume,
  with the same labels and budgets as before the registry existed.

This module used to carry its own hand-wired module list and a
15-entry instance table; both now live in
:mod:`repro.problems.registry` exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, List, Optional, Tuple, Type

from repro.problems import (
    PIDS as _REGISTRY_PIDS,
    Inputs,
    problem_specs,
    shipped_automaton_classes as _shipped_automaton_classes,
    shipped_modules,
)
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.types import ProcessId

__all__ = [
    "SHIPPED_MODULES",
    "PIDS",
    "Inputs",
    "LintTarget",
    "lint_targets",
    "shipped_automaton_classes",
]

#: The packages whose automata the lint covers (registry-derived).
SHIPPED_MODULES: Tuple[str, ...] = shipped_modules()

PIDS: Tuple[ProcessId, ...] = _REGISTRY_PIDS


def shipped_automaton_classes() -> List[Type[ProcessAutomaton]]:
    """Every shipped :class:`ProcessAutomaton` class, in stable
    ``(module, qualname)`` order — see
    :func:`repro.problems.registry.shipped_automaton_classes`."""
    return _shipped_automaton_classes()


@dataclass(frozen=True)
class LintTarget:
    """One concrete algorithm instance for the dynamic passes.

    ``max_states``/``max_depth`` budget the pc-reachability exploration;
    ``race_check`` opts the target into the (slower) threaded race
    sanitizer; ``thread_steps`` caps each thread's operation budget
    there.
    """

    label: str
    factory: Callable[[], Algorithm]
    inputs: Inputs
    max_states: int = 150_000
    max_depth: int = 10_000
    race_check: bool = False
    thread_steps: int = 200_000
    naming_seed: Optional[int] = 1
    notes: str = field(default="", compare=False)


def lint_targets() -> List[LintTarget]:
    """One small instance per shipped algorithm, projected from the
    registry's ``"lint"``-role instances (registry declaration order,
    which is the historical lint output order)."""
    targets: List[LintTarget] = []
    for spec in problem_specs():
        for instance in spec.instances_with_role("lint"):
            targets.append(
                LintTarget(
                    label=instance.label,
                    factory=partial(spec.algorithm, instance),
                    inputs=spec.inputs(instance.params_dict()),
                    max_states=instance.max_states,
                    max_depth=instance.max_depth,
                    race_check=instance.race_check,
                    thread_steps=instance.thread_steps,
                    naming_seed=instance.naming_seed,
                    notes=instance.notes,
                )
            )
    return targets
