"""What the lint passes run over: automaton discovery + small instances.

Static passes analyse *classes*; dynamic passes (runtime anonymity
audit, pc reachability, race sanitizer) need concrete *instances* small
enough to explore exhaustively.  This module provides both:

* :func:`shipped_automaton_classes` imports every shipped algorithm
  package and walks the :class:`ProcessAutomaton` subclass tree,
  keeping only classes defined inside :mod:`repro` (so test mutants
  never leak into a clean run);
* :func:`lint_targets` returns one small instance per shipped
  algorithm, with exploration budgets tuned so ``python -m repro lint``
  stays fast.

Process identifiers follow the test suite's convention (>= 100) so they
can never collide with register indices or loop counters.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Type, Union

from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.types import ProcessId

#: Inputs as accepted by :class:`repro.runtime.system.System`.
Inputs = Union[Sequence[ProcessId], Mapping[ProcessId, object]]

#: The packages whose automata the lint covers.
SHIPPED_MODULES: Tuple[str, ...] = (
    "repro.core.mutex",
    "repro.core.consensus",
    "repro.core.renaming",
    "repro.core.election",
    "repro.baselines.named_mutex",
    "repro.baselines.named_consensus",
    "repro.baselines.named_renaming",
    "repro.baselines.splitter_renaming",
    "repro.extensions.commit_adopt",
    "repro.extensions.kset",
    "repro.extensions.naming_agreement",
    "repro.extensions.unbounded_consensus",
    "repro.extensions.variants",
    "repro.lowerbounds.candidates",
)

PIDS: Tuple[ProcessId, ...] = (101, 103, 107, 109)


def _all_subclasses(cls: Type[ProcessAutomaton]) -> List[Type[ProcessAutomaton]]:
    found: List[Type[ProcessAutomaton]] = []
    for sub in cls.__subclasses__():
        found.append(sub)
        found.extend(_all_subclasses(sub))
    return found


def shipped_automaton_classes() -> List[Type[ProcessAutomaton]]:
    """Every :class:`ProcessAutomaton` subclass shipped in :mod:`repro`.

    Imports the shipped algorithm modules first, so the result does not
    depend on what the caller already imported; classes defined outside
    the :mod:`repro` package (e.g. test mutants) are excluded.
    """
    for module in SHIPPED_MODULES:
        importlib.import_module(module)
    classes = [
        cls
        for cls in _all_subclasses(ProcessAutomaton)
        if cls.__module__.split(".")[0] == "repro"
    ]
    classes.sort(key=lambda cls: (cls.__module__, cls.__qualname__))
    return classes


@dataclass(frozen=True)
class LintTarget:
    """One concrete algorithm instance for the dynamic passes.

    ``max_states``/``max_depth`` budget the pc-reachability exploration;
    ``race_check`` opts the target into the (slower) threaded race
    sanitizer; ``thread_steps`` caps each thread's operation budget
    there.
    """

    label: str
    factory: Callable[[], Algorithm]
    inputs: Inputs
    max_states: int = 150_000
    max_depth: int = 10_000
    race_check: bool = False
    thread_steps: int = 200_000
    naming_seed: Optional[int] = 1
    notes: str = field(default="", compare=False)


def lint_targets() -> List[LintTarget]:
    """One small instance per shipped algorithm (see module docstring)."""
    from repro.baselines.named_consensus import NamedConsensus
    from repro.baselines.named_mutex import PetersonMutex
    from repro.baselines.named_renaming import ElectionChainRenaming
    from repro.baselines.splitter_renaming import SplitterRenaming
    from repro.core.consensus import AnonymousConsensus
    from repro.core.election import AnonymousElection
    from repro.core.mutex import AnonymousMutex
    from repro.core.renaming import AnonymousRenaming
    from repro.extensions.commit_adopt import CommitAdopt
    from repro.extensions.kset import PartitionedKSetConsensus
    from repro.extensions.naming_agreement import NamingAgreement
    from repro.extensions.unbounded_consensus import UnboundedConsensus
    from repro.extensions.variants import LenientConsensus, ThresholdMutex
    from repro.lowerbounds.candidates import NaiveTestAndSetLock

    two = PIDS[:2]
    return [
        LintTarget(
            "figure-1-mutex(m=3)",
            lambda: AnonymousMutex(m=3, cs_visits=1),
            two,
            race_check=True,
        ),
        LintTarget(
            "figure-2-consensus(n=2)",
            lambda: AnonymousConsensus(n=2),
            {two[0]: "a", two[1]: "b"},
            race_check=True,
        ),
        LintTarget(
            "figure-3-renaming(n=2)",
            lambda: AnonymousRenaming(n=2),
            two,
            race_check=True,
        ),
        LintTarget(
            "election(n=2)",
            lambda: AnonymousElection(n=2),
            two,
        ),
        LintTarget(
            "naming-agreement(n=2)",
            lambda: NamingAgreement(n=2),
            two,
            max_states=400_000,
            notes="repair_write needs deep interleavings",
        ),
        LintTarget(
            "commit-adopt",
            lambda: CommitAdopt(domain=(1, 2)),
            {two[0]: 1, two[1]: 2},
            naming_seed=None,
        ),
        LintTarget(
            "ladder-consensus",
            lambda: UnboundedConsensus(domain=(1, 2), max_rounds=8),
            {two[0]: 1, two[1]: 2},
            naming_seed=None,
            notes="state space grows with rounds; truncation expected",
        ),
        LintTarget(
            "threshold-mutex(m=3,t=2)",
            lambda: ThresholdMutex(m=3, threshold=2, cs_visits=1),
            two,
        ),
        LintTarget(
            "lenient-consensus(n=2)",
            lambda: LenientConsensus(n=2),
            {two[0]: "a", two[1]: "b"},
        ),
        LintTarget(
            "partitioned-k-set(n=2,k=2)",
            lambda: PartitionedKSetConsensus(n=2, k=2),
            {two[0]: "a", two[1]: "b"},
            naming_seed=None,
        ),
        LintTarget(
            "naive-lock",
            lambda: NaiveTestAndSetLock(cs_visits=1),
            two,
        ),
        LintTarget(
            "peterson-mutex",
            lambda: PetersonMutex(cs_visits=1),
            two,
            race_check=True,
            naming_seed=None,
        ),
        LintTarget(
            "election-chain-renaming(n=2)",
            lambda: ElectionChainRenaming(n=2),
            two,
            naming_seed=None,
        ),
        LintTarget(
            "splitter-renaming(n=2)",
            lambda: SplitterRenaming(n=2),
            two,
            naming_seed=None,
        ),
        LintTarget(
            "named-consensus(n=2)",
            lambda: NamedConsensus(n=2),
            {two[0]: "a", two[1]: "b"},
            naming_seed=None,
        ),
    ]
