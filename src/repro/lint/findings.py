"""The lint passes' common currency: the :class:`Finding` record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

#: Finding severities, mildest first.  ``error`` findings fail the lint
#: run (non-zero exit); ``info`` findings are advisory (skipped classes,
#: truncated explorations).
SEVERITIES = ("info", "error")


@dataclass(frozen=True)
class Finding:
    """One lint observation.

    Attributes
    ----------
    pass_name:
        Which pass produced it: ``symmetry``, ``anonymity``, ``races``
        or ``pc-audit``.
    severity:
        ``"error"`` (violates a model rule) or ``"info"`` (advisory).
    subject:
        The automaton class or lint target the finding is about.
    detail:
        Human-readable description of what was observed.
    location:
        ``file.py:line`` for static findings, a run label for dynamic
        ones; empty when not applicable.
    """

    pass_name: str
    severity: str
    subject: str
    detail: str
    location: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown finding severity {self.severity!r}")


def errors_in(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of ``findings`` that should fail the lint run."""
    return [f for f in findings if f.severity == "error"]


def worst_severity(findings: Sequence[Finding]) -> Optional[str]:
    """The most severe level present, or ``None`` for a clean run."""
    worst: Optional[str] = None
    for finding in findings:
        if worst is None or SEVERITIES.index(finding.severity) > SEVERITIES.index(worst):
            worst = finding.severity
    return worst
