"""The lint passes' common currency: the :class:`Finding` record.

v2 adds three things the CI gate needs:

* a ``warning`` level between ``info`` and ``error`` (fails only under
  ``--strict``);
* a machine-readable ``rule`` slug per finding, so findings have stable
  identities across runs (the SARIF ``ruleId``, the suppression key);
* :func:`assign_ids` — deterministic per-run finding IDs of the form
  ``<pass>.<rule>.<subject>`` (with ``#N`` ordinals for repeats), which
  the JSON/SARIF emitters sort by and the baseline file suppresses by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Finding severities, mildest first.  ``error`` findings always fail
#: the lint run (non-zero exit); ``warning`` findings fail only under
#: ``--strict``; ``info`` findings are advisory (skipped classes,
#: truncated explorations).
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One lint observation.

    Attributes
    ----------
    pass_name:
        Which pass produced it: ``symmetry``, ``anonymity``, ``races``,
        ``pc-audit``, ``footprints`` or ``domains``.
    severity:
        ``"error"`` (violates a model rule), ``"warning"`` (fails under
        ``--strict``) or ``"info"`` (advisory).
    subject:
        The automaton class or lint target the finding is about.
    detail:
        Human-readable description of what was observed.
    location:
        ``file.py:line`` for static findings, a run label for dynamic
        ones; empty when not applicable.
    rule:
        Stable machine-readable slug for the *kind* of finding
        (``pid-index``, ``drift``, ``unbounded-write``, …); part of the
        finding's identity, so keep slugs stable across refactors.
    """

    pass_name: str
    severity: str
    subject: str
    detail: str
    location: str = ""
    rule: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown finding severity {self.severity!r}")


def finding_key(finding: Finding) -> str:
    """The ID stem shared by identical-identity findings."""
    return f"{finding.pass_name}.{finding.rule or 'general'}.{finding.subject}"


def assign_ids(findings: Sequence[Finding]) -> List[Tuple[str, Finding]]:
    """Deterministic IDs for a whole run's findings, in given order.

    The first finding with a given ``(pass, rule, subject)`` identity
    gets the bare stem; repeats get ``#2``, ``#3``, … ordinals.  IDs are
    therefore stable as long as pass output order is (which the passes
    guarantee by iterating the registry in declaration order).
    """
    counts: Dict[str, int] = {}
    out: List[Tuple[str, Finding]] = []
    for finding in findings:
        stem = finding_key(finding)
        counts[stem] = counts.get(stem, 0) + 1
        ordinal = counts[stem]
        out.append((stem if ordinal == 1 else f"{stem}#{ordinal}", finding))
    return out


def errors_in(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of ``findings`` that always fails the lint run."""
    return [f for f in findings if f.severity == "error"]


def failures_in(
    findings: Sequence[Finding], strict: bool = False
) -> List[Finding]:
    """The findings that fail the run: errors, plus warnings under
    ``--strict``."""
    failing = ("error", "warning") if strict else ("error",)
    return [f for f in findings if f.severity in failing]


def worst_severity(findings: Sequence[Finding]) -> Optional[str]:
    """The most severe level present, or ``None`` for a clean run."""
    worst: Optional[str] = None
    for finding in findings:
        if worst is None or SEVERITIES.index(finding.severity) > SEVERITIES.index(worst):
            worst = finding.severity
    return worst
