"""Bounded-domain pass: register writes must come from finite domains.

The paper's anonymous-register model is only finitely explorable because
every value that reaches shared memory is drawn from a finite set: the
input domain, the pid set, small constant alphabets, or counters the
algorithm itself bounds.  An automaton that writes an *unbounded*
value — say ``result + 1`` accumulated without a witnessed bound —
silently breaks every state-space argument downstream (the explorer
would diverge rather than exhaust).

The dataflow IR tags each value with provenance kinds; this pass walks
every ``WriteOp`` site recorded for an automaton's ``next_op`` and
checks the written value's kinds:

``unbounded-write`` (error)
    The written value carries the ``unbounded`` kind — some arithmetic
    or opaque construction produced it and no bounded witness (a
    comparison against the counter elsewhere in the class) redeemed it.

``unforwarded-write`` (error)
    The written value is forwarded verbatim from an inner automaton
    (kind ``forwarded``) but the class's declared footprint says
    ``forwards_values=False`` — the registry under-promises what can
    reach memory.  When the class has no declaration the inferred
    footprint is used, which makes this rule vacuous there (the
    footprint pass separately flags the missing declaration).

``skipped`` (info)
    Source unavailable — the class cannot be analysed statically.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Type

from repro.lint.findings import Finding
from repro.lint.ir import _short, analyze_class
from repro.lint.registry import shipped_automaton_classes
from repro.runtime.automaton import ProcessAutomaton

PASS = "domains"


def check_class(cls: Type[ProcessAutomaton]) -> List[Finding]:
    """Bounded-domain findings for one automaton class."""
    subject = cls.__qualname__
    analysis = analyze_class(cls)
    if analysis is None:
        return [
            Finding(
                pass_name=PASS,
                severity="info",
                subject=subject,
                detail="source unavailable — skipped",
                rule="skipped",
            )
        ]
    from repro.lint.footprints import declared_footprints

    declared, _ = declared_footprints()
    footprint = declared.get(subject)
    forwards_ok = (
        footprint.forwards_values
        if footprint is not None
        else analysis.footprint().forwards_values
    )
    findings: List[Finding] = []
    for site in analysis.op_sites:
        if site.kind != "write":
            continue
        location = f"{_short(site.filename)}:{site.line}"
        if "unbounded" in site.value.kinds:
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error",
                    subject=subject,
                    detail=(
                        "WriteOp value is drawn from an unbounded domain "
                        "(arithmetic without a witnessed counter bound) — "
                        "exploration over this automaton cannot terminate"
                    ),
                    location=location,
                    rule="unbounded-write",
                )
            )
        if "forwarded" in site.value.kinds and not forwards_ok:
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error",
                    subject=subject,
                    detail=(
                        "WriteOp value is forwarded from an inner automaton "
                        "but the declared footprint has forwards_values="
                        "False — declare the forwarding or stop writing "
                        "inner-automaton values"
                    ),
                    location=location,
                    rule="unforwarded-write",
                )
            )
    return findings


def run_domains_pass(
    classes: Optional[Iterable[Type[ProcessAutomaton]]] = None,
) -> List[Finding]:
    """Run the bounded-domain checker over ``classes`` (default: shipped)."""
    target: Sequence[Type[ProcessAutomaton]] = (
        list(classes) if classes is not None else shipped_automaton_classes()
    )
    findings: List[Finding] = []
    for cls in target:
        findings.extend(check_class(cls))
    return findings
