"""Race and lock-discipline sanitizer for the real-thread backend.

The deterministic scheduler realises the model's atomic registers
structurally; the thread backend (:mod:`repro.runtime.threads`) has to
*earn* that atomicity with per-register locks
(:class:`~repro.memory.register.LockedRegister`).  This pass checks it
actually does, from the recorded access stream of a real threaded run:

* **lock discipline** — in a multi-threaded run every counted register
  access must hold the register's lock.  An unguarded access means the
  system was built with ``locked=False`` (or a register was swapped
  out), i.e. reads and writes are no longer the model's "indivisible
  action";
* **data races** — a vector-clock (FastTrack-style) analysis over the
  access stream.  Each register's lock acts as the release/acquire
  sync object; two accesses to the same register, at least one a
  write, not ordered by the resulting happens-before relation, are a
  race.  With the locks in place every same-register pair is ordered,
  so shipped runs are race-free by construction — the pass proves it
  on the observed stream;
* **torn read-modify-write** — a thread reads a register, another
  thread's write lands, then the first thread writes the same register
  — all without lock protection.  (With per-register locking this
  interleaving still happens and is *fine*: it is exactly the
  contention the paper's obstruction-free algorithms are designed to
  absorb at the algorithm level.  It is only reported when the
  accesses were unguarded, where it silently corrupts the naive
  lock's claim/verify idiom.)

The events come from the observer hook on
:class:`~repro.memory.register.RegisterArray`; worker threads are
identified by the ``proc-<pid>`` naming convention of
:class:`~repro.runtime.threads.ThreadRunner`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import LintTarget
from repro.memory.register import AtomicRegister
from repro.runtime.system import System
from repro.runtime.threads import ThreadRunner
from repro.types import ProcessId, RegisterValue

PASS = "races"


@dataclass(frozen=True)
class AccessEvent:
    """One recorded register access, in global observation order."""

    seq: int
    thread: str
    pid: Optional[ProcessId]
    register: int
    kind: str  # "read" or "write"
    guarded: bool


class AccessRecorder:
    """Array observer collecting a totally-ordered access stream.

    The recorder's own lock orders the events; for guarded accesses this
    order is consistent with the per-register lock order because the
    observer fires while the register lock is held.
    """

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []
        self._lock = threading.Lock()

    def __call__(
        self, reg: AtomicRegister, kind: str, value: RegisterValue, guarded: bool
    ) -> None:
        name = threading.current_thread().name
        pid: Optional[ProcessId] = None
        if name.startswith("proc-"):
            try:
                pid = int(name[5:])
            except ValueError:
                pid = None
        with self._lock:
            self.events.append(
                AccessEvent(len(self.events), name, pid, reg.index, kind, guarded)
            )


def _join(into: Dict[str, int], other: Dict[str, int]) -> None:
    for thread, clock in other.items():
        if clock > into.get(thread, 0):
            into[thread] = clock


def analyze_events(events: List[AccessEvent], subject: str) -> List[Finding]:
    """Lock-discipline + vector-clock race + torn-RMW analysis."""
    findings: List[Finding] = []
    worker_threads = {e.thread for e in events if e.pid is not None}
    multi = len(worker_threads) > 1

    # -- lock discipline ------------------------------------------------
    if multi:
        reported: Set[Tuple[str, int]] = set()
        for event in events:
            if event.pid is not None and not event.guarded:
                key = (event.thread, event.register)
                if key not in reported:
                    reported.add(key)
                    findings.append(
                        Finding(
                            pass_name=PASS,
                            severity="error",
                            subject=subject,
                            detail=(
                                f"lock discipline: thread {event.thread} "
                                f"{event.kind} register {event.register} "
                                f"without holding its lock"
                            ),
                            location=f"event:{event.seq}",
                            rule="lock-discipline",
                        )
                    )

    # -- vector-clock data races ---------------------------------------
    vc: Dict[str, Dict[str, int]] = {}
    lock_vc: Dict[int, Dict[str, int]] = {}
    last_write: Dict[int, Tuple[str, int, int]] = {}  # reg -> (thread, clock, seq)
    last_reads: Dict[int, Dict[str, Tuple[int, int]]] = {}  # reg -> thread -> (clock, seq)
    race_keys: Set[Tuple[str, int, str, str]] = set()

    def ordered(thread: str, other: str, clock: int) -> bool:
        return thread == other or vc[thread].get(other, 0) >= clock

    for event in events:
        thread = event.thread
        mine = vc.setdefault(thread, {thread: 0})
        mine[thread] = mine.get(thread, 0) + 1
        if event.guarded:
            _join(mine, lock_vc.setdefault(event.register, {}))

        write = last_write.get(event.register)
        if write is not None and not ordered(thread, write[0], write[1]):
            key = ("ww" if event.kind == "write" else "wr", event.register, write[0], thread)
            if key not in race_keys:
                race_keys.add(key)
                findings.append(
                    Finding(
                        pass_name=PASS,
                        severity="error",
                        subject=subject,
                        detail=(
                            f"data race on register {event.register}: "
                            f"{event.kind} by {thread} concurrent with write "
                            f"by {write[0]}"
                        ),
                        location=f"events:{write[2]},{event.seq}",
                        rule="data-race",
                    )
                )
        if event.kind == "write":
            for other, (clock, seq) in last_reads.get(event.register, {}).items():
                if not ordered(thread, other, clock):
                    key = ("rw", event.register, other, thread)
                    if key not in race_keys:
                        race_keys.add(key)
                        findings.append(
                            Finding(
                                pass_name=PASS,
                                severity="error",
                                subject=subject,
                                detail=(
                                    f"data race on register {event.register}: "
                                    f"write by {thread} concurrent with read "
                                    f"by {other}"
                                ),
                                location=f"events:{seq},{event.seq}",
                                rule="data-race",
                            )
                        )
            last_write[event.register] = (thread, mine[thread], event.seq)
            last_reads[event.register] = {}
        else:
            last_reads.setdefault(event.register, {})[thread] = (
                mine[thread],
                event.seq,
            )
        if event.guarded:
            _join(lock_vc.setdefault(event.register, {}), mine)

    # -- torn unguarded read-modify-write ------------------------------
    open_reads: Dict[Tuple[str, int], AccessEvent] = {}
    dirtied: Dict[Tuple[str, int], AccessEvent] = {}
    torn_keys: Set[Tuple[str, int]] = set()
    for event in events:
        if event.pid is None:
            continue
        key = (event.thread, event.register)
        if event.kind == "read":
            if not event.guarded:
                open_reads[key] = event
                dirtied.pop(key, None)
            else:
                open_reads.pop(key, None)
            continue
        # A write: first, it invalidates other threads' open reads.
        for other_key, read_event in list(open_reads.items()):
            if other_key[1] == event.register and other_key[0] != event.thread:
                dirtied[other_key] = event
        read = open_reads.pop(key, None)
        intervening = dirtied.pop(key, None)
        if (
            read is not None
            and intervening is not None
            and not event.guarded
            and (event.thread, event.register) not in torn_keys
        ):
            torn_keys.add((event.thread, event.register))
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error",
                    subject=subject,
                    detail=(
                        f"torn read-modify-write on register {event.register}: "
                        f"{event.thread} read at event {read.seq}, "
                        f"{intervening.thread} wrote at event "
                        f"{intervening.seq}, {event.thread} wrote at event "
                        f"{event.seq} — all unguarded"
                    ),
                    location=f"events:{read.seq},{intervening.seq},{event.seq}",
                    rule="torn-rmw",
                )
            )
    return findings


def record_threaded_run(
    system: System,
    subject: str,
    max_steps: int = 200_000,
    timeout: float = 30.0,
    backoff: Optional[float] = 0.0005,
    seed: int = 0,
) -> Tuple[List[Finding], List[AccessEvent]]:
    """Run ``system`` on real threads with recording, then analyse."""
    recorder = AccessRecorder()
    system.memory.array.add_observer(recorder)
    try:
        runner = ThreadRunner(system, max_steps=max_steps, backoff=backoff, seed=seed)
        result = runner.run(timeout=timeout)
    finally:
        system.memory.array.remove_observer(recorder)

    findings = analyze_events(recorder.events, subject)
    if result.errors:
        for pid, exc in sorted(result.errors.items(), key=lambda kv: kv[0]):
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error",
                    subject=subject,
                    detail=f"thread for process {pid} raised {exc!r}",
                    location=f"run:{subject}",
                    rule="thread-error",
                )
            )
    if result.timed_out:
        findings.append(
            Finding(
                pass_name=PASS,
                severity="error",
                subject=subject,
                detail=f"threaded run timed out for processes {result.timed_out}",
                location=f"run:{subject}",
                rule="timeout",
            )
        )
    return findings, recorder.events


def run_race_sanitizer(
    target: LintTarget, timeout: float = 30.0, seed: int = 0
) -> List[Finding]:
    """Threaded sanitizer run for one registry target (``locked=True``)."""
    system = System(
        target.factory(), target.inputs, locked=True, record_trace=False
    )
    findings, events = record_threaded_run(
        system,
        target.label,
        max_steps=target.thread_steps,
        timeout=timeout,
        seed=seed,
    )
    if not events:
        findings.append(
            Finding(
                pass_name=PASS,
                severity="info",
                subject=target.label,
                detail="threaded run produced no register accesses",
                location=f"run:{target.label}",
                rule="no-accesses",
            )
        )
    return findings
