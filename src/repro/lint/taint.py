"""Pid-taint pass: the §2 identifier discipline, enforced semantically.

The syntactic pass in :mod:`repro.lint.symmetry` flagged forbidden
*expressions* (``view[self.pid]``); this pass flags forbidden *values*.
It evaluates each automaton's own method bodies under the dataflow IR
(:mod:`repro.lint.ir`), so an identifier laundered through a local, a
tuple, a helper-method return value or a state field is still caught:

    x = self.pid
    myview = (result, result)
    ...myview[x]...          # flagged: process identifier used as an index

The pass name stays ``"symmetry"`` — it is the same discipline, checked
more deeply — so existing baselines, tests and docs keep addressing the
findings the same way.  Findings carry machine-readable rule slugs:

==========================  ============================================
rule                        flags
==========================  ============================================
``pid-arithmetic``          binary/unary arithmetic on an identifier
``pid-ordering``            ``<``/``<=``/... between identifiers
``pid-index``               identifier as a subscript index
``pid-numeric-builtin``     ``hash(pid)``, ``range(pid)``, ...
``pid-register-index``      identifier in a Read/WriteOp index position
``skipped``                 class not analysed (opt-out or no source)
==========================  ============================================
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Type

from repro.lint.findings import Finding
from repro.lint.ir import _short, taint_violations
from repro.lint.registry import shipped_automaton_classes
from repro.runtime.automaton import ProcessAutomaton

PASS = "symmetry"

#: detail-prefix → rule slug (first match wins).
_RULES = (
    ("non-equality comparison", "pid-ordering"),
    ("process identifier used as an index", "pid-index"),
    ("process identifier passed to numeric builtin", "pid-numeric-builtin"),
    ("process identifier used as a ", "pid-register-index"),
    ("arithmetic on a process identifier", "pid-arithmetic"),
    ("unary arithmetic", "pid-arithmetic"),
)


def _rule_for(detail: str) -> str:
    for fragment, rule in _RULES:
        if fragment in detail:
            return rule
    return "pid-use"


def check_class(cls: Type[ProcessAutomaton]) -> List[Finding]:
    """Taint findings for one automaton class (its own body only)."""
    if not cls.SYMMETRIC:
        return [
            Finding(
                pass_name=PASS,
                severity="info",
                subject=cls.__qualname__,
                detail="declares SYMMETRIC = False (named-model prior "
                "agreement) — skipped",
                rule="skipped",
            )
        ]
    violations = taint_violations(cls)
    if violations is None:
        return [
            Finding(
                pass_name=PASS,
                severity="info",
                subject=cls.__qualname__,
                detail="source unavailable — skipped",
                rule="skipped",
            )
        ]
    return [
        Finding(
            pass_name=PASS,
            severity="error",
            subject=cls.__qualname__,
            detail=violation.detail,
            location=f"{_short(violation.filename)}:{violation.line}",
            rule=_rule_for(violation.detail),
        )
        for violation in violations
    ]


def run_symmetry_pass(
    classes: Optional[Iterable[Type[ProcessAutomaton]]] = None,
) -> List[Finding]:
    """Run the pid-taint linter over ``classes`` (default: all shipped)."""
    target_classes: Sequence[Type[ProcessAutomaton]] = (
        list(classes) if classes is not None else shipped_automaton_classes()
    )
    findings: List[Finding] = []
    for cls in target_classes:
        findings.extend(check_class(cls))
    return findings
