"""``python -m repro lint`` — run every pass, print a findings table.

The classes and instances the passes cover come from the problem
registry (:mod:`repro.problems`) via :mod:`repro.lint.registry`, so the
summary line's counts are the registry's counts — there is no separate
lint-side table to fall out of date.

Exit status: 0 when no ``error``-severity finding was produced, 1
otherwise — so CI can gate on the model disciplines the same way it
gates on tests.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.lint.findings import Finding, errors_in
from repro.lint.registry import lint_targets, shipped_automaton_classes


def collect_findings(
    skip_races: bool = False, skip_dynamic: bool = False
) -> List[Finding]:
    """Run every lint pass over the shipped algorithms."""
    from repro.lint.anonymity import run_anonymity_audits, run_anonymity_pass
    from repro.lint.pc_audit import run_pc_reachability_pass, run_pc_static_pass
    from repro.lint.races import run_race_sanitizer
    from repro.lint.symmetry import run_symmetry_pass

    classes = shipped_automaton_classes()
    targets = lint_targets()

    findings: List[Finding] = []
    findings.extend(run_symmetry_pass(classes))
    findings.extend(run_anonymity_pass(classes))
    findings.extend(run_pc_static_pass(classes))
    if not skip_dynamic:
        findings.extend(run_anonymity_audits(targets))
        findings.extend(run_pc_reachability_pass(targets))
    if not skip_races and not skip_dynamic:
        for target in targets:
            if target.race_check:
                findings.extend(run_race_sanitizer(target))
    return findings


def render_findings(findings: Sequence[Finding]) -> str:
    """The findings as an aligned ASCII table."""
    rows = [
        [f.pass_name, f.severity.upper(), f.subject, f.detail, f.location]
        for f in findings
    ]
    return render_table(
        ["pass", "level", "subject", "detail", "location"],
        rows,
        title="repro lint findings",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static analysis + runtime audits for the paper's model "
        "rules (symmetry, memory anonymity, atomicity, pc annotations).",
    )
    parser.add_argument(
        "--skip-races",
        action="store_true",
        help="skip the (threaded) race sanitizer runs",
    )
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="skip every dynamic pass (no exploration, no threads)",
    )
    parser.add_argument(
        "--quiet-info",
        action="store_true",
        help="hide info-severity findings from the table",
    )
    args = parser.parse_args(argv)

    started = time.monotonic()
    classes = shipped_automaton_classes()
    findings = collect_findings(
        skip_races=args.skip_races, skip_dynamic=args.static_only
    )
    duration = time.monotonic() - started

    shown = (
        [f for f in findings if f.severity != "info"]
        if args.quiet_info
        else list(findings)
    )
    if shown:
        print(render_findings(shown))
        print()
    errors = errors_in(findings)
    infos = len(findings) - len(errors)
    print(
        f"repro lint: {len(classes)} automaton classes, "
        f"{len(lint_targets())} instances — "
        f"{len(errors)} error{'' if len(errors) == 1 else 's'}, "
        f"{infos} note{'' if infos == 1 else 's'} ({duration:.1f}s)"
    )
    if errors:
        print("LINT FAILED: the model's structural rules are violated above")
        return 1
    print("all model disciplines hold: symmetric, view-mediated, race-free, "
          "pc-annotated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
