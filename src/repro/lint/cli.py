"""``python -m repro lint`` — run every pass, report, gate.

The classes and instances the passes cover come from the problem
registry (:mod:`repro.problems`) via :mod:`repro.lint.registry`, so the
summary line's counts are the registry's counts — there is no separate
lint-side table to fall out of date.

Output formats (``--format``):

* ``table`` (default) — the human-facing aligned table plus summary;
* ``json``  — deterministic JSON sorted by finding ID;
* ``sarif`` — SARIF 2.1.0, suitable for GitHub code-scanning upload.

Gating: findings suppressed by the baseline file (``--baseline``,
default ``lint-baseline.json`` at the repo root) are dropped before
gating.  Exit status is 0 unless an ``error`` finding remains — or,
under ``--strict``, unless a ``warning`` remains (including the
``stale-suppression`` warnings the baseline machinery itself emits), so
CI can hold the line while local runs stay usable.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.lint.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    apply_baseline,
    load_baseline,
)
from repro.lint.findings import Finding, assign_ids, errors_in, failures_in
from repro.lint.registry import lint_targets, shipped_automaton_classes
from repro.lint.sarif import render_json, render_sarif


def collect_findings(
    skip_races: bool = False, skip_dynamic: bool = False
) -> List[Finding]:
    """Run every lint pass over the shipped algorithms."""
    from repro.lint.anonymity import run_anonymity_audits, run_anonymity_pass
    from repro.lint.domains import run_domains_pass
    from repro.lint.footprints import run_footprint_pass
    from repro.lint.pc_audit import run_pc_reachability_pass, run_pc_static_pass
    from repro.lint.races import run_race_sanitizer
    from repro.lint.symmetry import run_symmetry_pass

    classes = shipped_automaton_classes()
    targets = lint_targets()

    findings: List[Finding] = []
    findings.extend(run_symmetry_pass(classes))
    findings.extend(run_footprint_pass())
    findings.extend(run_domains_pass(classes))
    findings.extend(run_anonymity_pass(classes))
    findings.extend(run_pc_static_pass(classes))
    if not skip_dynamic:
        findings.extend(run_anonymity_audits(targets))
        findings.extend(run_pc_reachability_pass(targets))
    if not skip_races and not skip_dynamic:
        for target in targets:
            if target.race_check:
                findings.extend(run_race_sanitizer(target))
    return findings


def render_findings(findings: Sequence[Finding]) -> str:
    """The findings as an aligned ASCII table."""
    rows = [
        [f.pass_name, f.severity.upper(), f.subject, f.detail, f.location]
        for f in findings
    ]
    return render_table(
        ["pass", "level", "subject", "detail", "location"],
        rows,
        title="repro lint findings",
    )


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text)
    else:
        sys.stdout.write(text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static analysis + runtime audits for the paper's model "
        "rules (symmetry, memory anonymity, register footprints, bounded "
        "domains, atomicity, pc annotations).",
    )
    parser.add_argument(
        "--skip-races",
        action="store_true",
        help="skip the (threaded) race sanitizer runs",
    )
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="skip every dynamic pass (no exploration, no threads)",
    )
    parser.add_argument(
        "--quiet-info",
        action="store_true",
        help="hide info-severity findings from the table",
    )
    parser.add_argument(
        "--format",
        choices=["table", "json", "sarif"],
        default="table",
        help="output format (json/sarif are deterministic, sorted by "
        "finding ID)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout (the table "
        "format's summary line still prints to stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppression file (default: lint-baseline.json at the repo "
        "root; pass an empty string to disable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings (including stale baseline suppressions) also fail "
        "the run",
    )
    args = parser.parse_args(argv)

    started = time.monotonic()
    classes = shipped_automaton_classes()
    findings = collect_findings(
        skip_races=args.skip_races, skip_dynamic=args.static_only
    )
    duration = time.monotonic() - started

    baseline_path = (
        DEFAULT_BASELINE if args.baseline is None else Path(args.baseline)
    )
    identified: List[Tuple[str, Finding]] = assign_ids(findings)
    if args.baseline != "":
        try:
            suppressions = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        identified, stale = apply_baseline(identified, suppressions)
        identified.extend(assign_ids(stale))
    findings = [finding for _, finding in identified]

    if args.format == "json":
        _emit(render_json(identified), args.output)
    elif args.format == "sarif":
        _emit(render_sarif(identified), args.output)

    shown = (
        [f for f in findings if f.severity != "info"]
        if args.quiet_info
        else list(findings)
    )
    if args.format == "table":
        table = render_findings(shown) + "\n\n" if shown else ""
        if args.output:
            _emit(table, args.output)
        elif table:
            sys.stdout.write(table)
    # When a machine-readable document goes to stdout, keep the human
    # summary out of it (stderr) so the output stays parseable.
    summary_stream = (
        sys.stderr if args.format != "table" and not args.output else sys.stdout
    )
    errors = errors_in(findings)
    warnings = [f for f in findings if f.severity == "warning"]
    infos = len(findings) - len(errors) - len(warnings)
    print(
        f"repro lint: {len(classes)} automaton classes, "
        f"{len(lint_targets())} instances — "
        f"{len(errors)} error{'' if len(errors) == 1 else 's'}, "
        f"{len(warnings)} warning{'' if len(warnings) == 1 else 's'}, "
        f"{infos} note{'' if infos == 1 else 's'} ({duration:.1f}s)",
        file=summary_stream,
    )
    failures = failures_in(findings, strict=args.strict)
    if failures:
        print(
            "LINT FAILED: the model's structural rules are violated above",
            file=summary_stream,
        )
        return 1
    print(
        "all model disciplines hold: symmetric, view-mediated, race-free, "
        "pc-annotated",
        file=summary_stream,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
