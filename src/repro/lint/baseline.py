"""Baseline / suppression file for the lint CI gate.

``lint-baseline.json`` (checked in at the repository root) lists finding
IDs (:func:`repro.lint.findings.assign_ids`) that are *known* and must
not fail the build.  The intended workflow mirrors ruff's
``--add-noqa``-then-burn-down loop:

1. a new pass lands (or an old one gets sharper) and produces findings
   on existing code;
2. the findings that cannot be fixed in the same change are added to the
   baseline with a short ``reason``;
3. ``python -m repro lint --strict`` stays green while each suppression
   is burned down in follow-ups;
4. a suppression whose finding no longer occurs is *stale* and reported
   as a ``warning`` — under ``--strict`` the build fails until the dead
   entry is deleted, so the baseline can only shrink by being edited.

The file format is deliberately minimal::

    {
      "version": 1,
      "suppressions": [
        {"id": "symmetry.pid-index.SomeProcess", "reason": "tracked in #42"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.findings import Finding

PASS = "baseline"

#: Default baseline location: ``<repo root>/lint-baseline.json``.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "lint-baseline.json"


@dataclass(frozen=True)
class Suppression:
    """One baselined finding ID with its justification."""

    finding_id: str
    reason: str = ""


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: Path) -> List[Suppression]:
    """Parse ``path``; a missing file is an empty baseline."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise BaselineError(f"{path}: expected an object with version 1")
    entries = payload.get("suppressions", [])
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: 'suppressions' must be a list")
    suppressions: List[Suppression] = []
    for entry in entries:
        if not isinstance(entry, dict) or "id" not in entry:
            raise BaselineError(
                f"{path}: each suppression needs an 'id' field, got {entry!r}"
            )
        suppressions.append(
            Suppression(finding_id=entry["id"], reason=entry.get("reason", ""))
        )
    return suppressions


def apply_baseline(
    identified: Sequence[Tuple[str, Finding]],
    suppressions: Sequence[Suppression],
) -> Tuple[List[Tuple[str, Finding]], List[Finding]]:
    """Split findings into (kept, extra-stale-warnings).

    Suppressed findings are dropped from the kept list — they neither
    fail the run nor appear in the table.  Every suppression that
    matched nothing produces a ``warning`` finding (pass ``baseline``,
    rule ``stale-suppression``), so dead entries fail ``--strict``.
    """
    by_id: Dict[str, Suppression] = {s.finding_id: s for s in suppressions}
    matched: Set[str] = set()
    kept: List[Tuple[str, Finding]] = []
    for finding_id, finding in identified:
        if finding_id in by_id:
            matched.add(finding_id)
        else:
            kept.append((finding_id, finding))
    stale: List[Finding] = []
    for suppression in suppressions:
        if suppression.finding_id not in matched:
            stale.append(
                Finding(
                    pass_name=PASS,
                    severity="warning",
                    subject=suppression.finding_id,
                    detail=(
                        "stale suppression: no current finding has this ID"
                        + (f" (reason was: {suppression.reason})"
                           if suppression.reason else "")
                    ),
                    rule="stale-suppression",
                )
            )
    return kept, stale
