"""Dataflow IR over automaton step functions.

The original symmetry pass matched *syntax*: ``self.pid`` in a
forbidden position.  That cannot see through one local-variable hop
(``x = self.pid; view[x]``), and it cannot answer the questions the
canonicalizer and the problem registry stake soundness on — *which
registers does this automaton write, with what values?*  This module
lowers each automaton class into a small def-use IR and runs one
flow-sensitive abstract interpreter over it; the analysis passes
(:mod:`repro.lint.taint`, :mod:`repro.lint.footprints`,
:mod:`repro.lint.domains`) are thin consumers of its results.

Abstract domain
---------------
Every expression evaluates to an :class:`AbsVal`:

* ``taint`` — does the value *derive from a process identifier*?
  ``"direct"`` (it is one), ``"container"`` (a collection holding
  one), ``"none"``.  Taint is what §2's discipline restricts: a
  ``direct`` value may be written and equality-compared, nothing else.
* ``kinds`` — provenance lattice for the footprint inference:
  ``const``, ``config`` (constructor parameters), ``pid``, ``input``,
  ``memory`` (values read back from registers), ``counter`` (bounded
  loop counters), ``forwarded`` (values passing through an inner
  automaton), ``unbounded`` (arithmetic escaping every finite domain).
* ``consts`` — concrete payloads carried along pure-constant paths, so
  the inferred footprint can name the literal register indices and
  written constants.
* ``fields`` — which state fields the value was read from (feeds the
  bounded-counter classification).
* ``role`` — structural roles the evaluator dispatches on: ``self``,
  ``state``, ``automaton`` (an inner automaton object), ``function``,
  ``ownop`` (a freshly built Read/Write operation).

Method calls are interpreted interprocedurally with memoised summaries
keyed on the argument values; state-field contents are solved by a
small fixpoint over the transition methods.  Scope resolution is real:
names go through the defining class's module namespace (local
``import`` statements included), so ``dataclasses.replace``, record
constructors and module-level helper functions are classified by the
object they actually resolve to, not by name.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
import importlib
import inspect
import textwrap
import types
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.problems.spec import AutomatonFootprint
from repro.runtime.automaton import ProcessAutomaton

#: Builtins whose application to an identifier treats it as a number —
#: exactly what arbitrary-sized identifiers forbid.
NUMERIC_BUILTINS = frozenset(
    {"hash", "range", "divmod", "abs", "bin", "oct", "hex", "pow", "chr", "round"}
)

#: Comparison operators that are equality checks (allowed on identifiers).
EQUALITY_OPS = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)

#: Provenance kinds (see module docstring).
KINDS = frozenset(
    {
        "const",
        "config",
        "pid",
        "input",
        "memory",
        "counter",
        "forwarded",
        "unbounded",
    }
)

_TAINT_RANK = {"none": 0, "container": 1, "direct": 2}

_SCALAR_TYPES = (int, float, str, bytes, bool, type(None))


@dataclass(frozen=True)
class AbsVal:
    """One abstract value — the lattice element the evaluator computes."""

    taint: str = "none"
    kinds: FrozenSet[str] = frozenset()
    consts: Tuple[Any, ...] = ()
    fields: FrozenSet[str] = frozenset()
    role: str = ""


BOTTOM = AbsVal()
SELF_VAL = AbsVal(role="self")
STATE_VAL = AbsVal(role="state")
PID_VAL = AbsVal(taint="direct", kinds=frozenset({"pid"}))
INPUT_VAL = AbsVal(kinds=frozenset({"input"}))
MEMORY_VAL = AbsVal(kinds=frozenset({"memory"}))
CONFIG_VAL = AbsVal(kinds=frozenset({"config"}))
AUTOMATON_VAL = AbsVal(role="automaton")
FUNCTION_VAL = AbsVal(role="function")


def _taint_max(a: str, b: str) -> str:
    return a if _TAINT_RANK[a] >= _TAINT_RANK[b] else b


def _merge_consts(a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
    out: List[Any] = list(a)
    for item in b:
        if not any(item == seen and type(item) is type(seen) for seen in out):
            out.append(item)
    return tuple(out)


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    if a.role == b.role:
        role = a.role
    elif not a.role:
        role = b.role  # "" is the role bottom, not a conflicting claim
    elif not b.role:
        role = a.role
    else:
        role = ""
    return AbsVal(
        taint=_taint_max(a.taint, b.taint),
        kinds=a.kinds | b.kinds,
        consts=_merge_consts(a.consts, b.consts),
        fields=a.fields | b.fields,
        role=role,
    )


def join_all(vals: Iterable[AbsVal]) -> AbsVal:
    out = BOTTOM
    for val in vals:
        out = join(out, val)
    return out


def const_val(value: Any) -> AbsVal:
    if isinstance(value, _SCALAR_TYPES):
        return AbsVal(kinds=frozenset({"const"}), consts=(value,))
    return AbsVal(kinds=frozenset({"const"}))


def _demote(taint: str) -> str:
    """Direct taint demoted to container (value absorbed into a result)."""
    return "container" if taint == "direct" else taint


def _extract(val: AbsVal) -> AbsVal:
    """An element pulled out of a container value (iteration, ``.attr``)."""
    taint = "direct" if val.taint in ("container", "direct") else "none"
    return AbsVal(taint=taint, kinds=val.kinds)


# ---------------------------------------------------------------------------
# Source lowering
# ---------------------------------------------------------------------------


def class_source_tree(
    cls: type,
) -> Optional[Tuple[ast.ClassDef, str, int]]:
    """Parse ``cls``'s own source: (class node, file name, first line).

    Returns ``None`` when the source is unavailable *or unparseable* —
    classes built in a REPL or via ``exec`` can make ``inspect`` raise
    ``OSError``, hand back mis-sliced segments that fail to parse
    (``IndentationError`` is a ``SyntaxError``), or return an unrelated
    region; all of those degrade to "skipped", never a crash.
    """
    try:
        source, first_line = inspect.getsourcelines(cls)
        filename = inspect.getsourcefile(cls) or "<unknown>"
        tree = ast.parse(textwrap.dedent("".join(source)))
    except (OSError, TypeError, SyntaxError):
        return None
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            return node, filename, first_line
    return None


def _short(filename: str) -> str:
    marker = "repro/"
    pos = filename.rfind(marker)
    return filename[pos:] if pos >= 0 else filename


@dataclass
class MethodDef:
    """One method body, attributed to the class whose source defines it."""

    name: str
    definer: type
    node: ast.FunctionDef
    filename: str
    offset: int  # first source line of the definer's class body
    is_static: bool

    def line_of(self, node: ast.AST) -> int:
        return self.offset + getattr(node, "lineno", 1) - 1


@dataclass(frozen=True)
class TaintViolation:
    """One §2-discipline violation observed during evaluation."""

    detail: str
    filename: str
    line: int


@dataclass(frozen=True)
class OpSite:
    """One ``ReadOp``/``WriteOp`` construction reachable from ``next_op``."""

    kind: str  # "read" | "write"
    index: AbsVal
    value: Optional[AbsVal]
    filename: str
    line: int


def _is_staticmethod(node: ast.FunctionDef) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in node.decorator_list
    )


def _analysis_mro(cls: type) -> List[type]:
    """The MRO slice the analysis owns: everything below ProcessAutomaton."""
    out: List[type] = []
    for klass in cls.__mro__:
        if klass is ProcessAutomaton:
            break
        out.append(klass)
    return out


def _witness_names(class_nodes: Sequence[ast.ClassDef]) -> Set[str]:
    """Names appearing as comparison operands anywhere in the class bodies.

    A state field compared against a bound (``state.j + 1 < self.m``,
    ``myround == self.n``) is *witnessed* as a bounded counter.  A name
    only counts in terminal position: not as the base of an attribute or
    subscript (``myview[0].id == self.pid`` must not witness ``myview``)
    and not as a call's function.
    """
    names: Set[str] = set()
    for class_node in class_nodes:
        for sub in ast.walk(class_node):
            if not isinstance(sub, ast.Compare):
                continue
            for side in [sub.left, *sub.comparators]:
                banned: Set[int] = set()
                for parent in ast.walk(side):
                    if isinstance(parent, (ast.Attribute, ast.Subscript)):
                        banned.add(id(parent.value))
                    elif isinstance(parent, ast.Call):
                        banned.add(id(parent.func))
                for term in ast.walk(side):
                    if isinstance(term, ast.Name) and id(term) not in banned:
                        names.add(term.id)
                    elif (
                        isinstance(term, ast.Attribute)
                        and id(term) not in banned
                    ):
                        names.add(term.attr)
    return names


class ClassIR:
    """The lowered form of one automaton class: method bodies with scope.

    Built by :func:`build_class_ir`; consumed through
    :func:`analyze_class` / :func:`taint_violations`.
    """

    def __init__(self, cls: Type[ProcessAutomaton]) -> None:
        self.cls = cls
        #: name -> most-derived definition (resolution order = MRO).
        self.methods: Dict[str, MethodDef] = {}
        #: every (definer, name) definition, MRO then source order.
        self.method_index: Dict[Tuple[type, str], MethodDef] = {}
        self.state_cls: Optional[type] = None
        self.state_defaults: Dict[str, AbsVal] = {}
        self.config_attrs: Dict[str, AbsVal] = {}
        self.bounded_counters: FrozenSet[str] = frozenset()

    # -- scope resolution ---------------------------------------------------

    def module_ns(self, definer: type) -> Dict[str, Any]:
        import sys

        module = sys.modules.get(definer.__module__)
        return vars(module) if module is not None else {}

    def resolve_after(self, definer: type, name: str) -> Optional[MethodDef]:
        """``super()`` resolution: the next definition past ``definer``."""
        mro = _analysis_mro(self.cls)
        try:
            start = mro.index(definer) + 1
        except ValueError:
            return None
        for klass in mro[start:]:
            md = self.method_index.get((klass, name))
            if md is not None:
                return md
        return None

    def own_methods(self) -> List[MethodDef]:
        return [
            md
            for (klass, _name), md in self.method_index.items()
            if klass is self.cls
        ]


_NOTFOUND = object()


def build_class_ir(cls: Type[ProcessAutomaton]) -> Optional[ClassIR]:
    """Lower ``cls`` (and its analysable bases) into a :class:`ClassIR`.

    Returns ``None`` when ``cls``'s own source is unavailable; a base
    class without source merely contributes no methods (its behaviour is
    treated as an analysis boundary).
    """
    ir = ClassIR(cls)
    class_nodes: List[ast.ClassDef] = []
    parsed_any_own = False
    for klass in _analysis_mro(cls):
        parsed = class_source_tree(klass)
        if parsed is None:
            if klass is cls:
                return None
            continue
        node, filename, first_line = parsed
        if klass is cls:
            parsed_any_own = True
        class_nodes.append(node)
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            md = MethodDef(
                name=item.name,
                definer=klass,
                node=item,
                filename=filename,
                offset=first_line,
                is_static=_is_staticmethod(item),
            )
            ir.method_index[(klass, item.name)] = md
            ir.methods.setdefault(item.name, md)
    if not parsed_any_own:
        return None

    _resolve_state_class(ir)
    _collect_state_defaults(ir)
    _collect_bounded_counters(ir, class_nodes)
    _collect_config_attrs(ir)
    return ir


def _resolve_state_class(ir: ClassIR) -> None:
    md = ir.methods.get("initial_state")
    if md is None or md.node.returns is None:
        return
    annotation = md.node.returns
    name: Optional[str] = None
    if isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name = annotation.value
    elif isinstance(annotation, ast.Attribute):
        name = annotation.attr
    if name is None:
        return
    resolved = ir.module_ns(md.definer).get(name)
    if isinstance(resolved, type) and dataclasses.is_dataclass(resolved):
        ir.state_cls = resolved


def _collect_state_defaults(ir: ClassIR) -> None:
    if ir.state_cls is None:
        return
    for f in dataclasses.fields(ir.state_cls):
        if f.default is not dataclasses.MISSING and isinstance(
            f.default, _SCALAR_TYPES
        ):
            ir.state_defaults[f.name] = const_val(f.default)
        else:
            ir.state_defaults[f.name] = BOTTOM


def _collect_bounded_counters(
    ir: ClassIR, class_nodes: Sequence[ast.ClassDef]
) -> None:
    if ir.state_cls is None:
        return
    witnessed = _witness_names(class_nodes)
    counters: Set[str] = set()
    for f in dataclasses.fields(ir.state_cls):
        int_ish = "int" in str(f.type) or (
            isinstance(f.default, int) and not isinstance(f.default, bool)
        )
        if int_ish and f.name in witnessed:
            counters.add(f.name)
    ir.bounded_counters = frozenset(counters)


def _collect_config_attrs(ir: ClassIR) -> None:
    """Evaluate the ``__init__`` chain (base first) to type ``self.*``."""
    evaluator = Evaluator(ir, {})
    for klass in reversed(_analysis_mro(ir.cls)):
        md = ir.method_index.get((klass, "__init__"))
        if md is None:
            continue
        evaluator.eval_entry(md, collect_config=True)
    ir.config_attrs = evaluator.config_writes


# ---------------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------------


class _Frame:
    __slots__ = ("env", "objs")

    def __init__(self) -> None:
        self.env: Dict[str, AbsVal] = {}
        self.objs: Dict[str, Any] = {}


class Evaluator:
    """One flow-sensitive evaluation context over a :class:`ClassIR`.

    The same evaluator instance is reused across entry points so that
    method summaries are shared; it accumulates taint violations, op
    sites (while inside the ``next_op`` closure) and state-field writes.
    """

    def __init__(self, ir: ClassIR, fields_env: Dict[str, AbsVal]) -> None:
        self.ir = ir
        self.fields_env = fields_env
        self.violations: List[TaintViolation] = []
        self.op_sites: List[OpSite] = []
        self.field_writes: Dict[str, AbsVal] = {}
        self.config_writes: Dict[str, AbsVal] = {}
        self.next_op_return: AbsVal = BOTTOM
        self._summaries: Dict[Tuple[Any, ...], AbsVal] = {}
        self._active: Set[Tuple[Any, ...]] = set()
        self._collect_ops = False
        self._collect_config = False

    # -- entry points -------------------------------------------------------

    def eval_entry(
        self, md: MethodDef, collect_config: bool = False
    ) -> AbsVal:
        args = self._entry_args(md, config_params=collect_config)
        prev_ops, prev_cfg = self._collect_ops, self._collect_config
        self._collect_ops = md.name == "next_op"
        self._collect_config = collect_config
        try:
            result = self._eval_method(md, args)
        finally:
            self._collect_ops, self._collect_config = prev_ops, prev_cfg
        if md.name == "next_op":
            self.next_op_return = join(self.next_op_return, result)
        return result

    def _entry_args(
        self, md: MethodDef, config_params: bool = False
    ) -> Tuple[AbsVal, ...]:
        vals: List[AbsVal] = []
        for index, param in enumerate(md.node.args.args):
            if index == 0 and not md.is_static:
                vals.append(SELF_VAL)
            elif param.arg == "state":
                vals.append(STATE_VAL)
            elif param.arg == "result":
                vals.append(MEMORY_VAL)
            elif param.arg == "pid":
                vals.append(PID_VAL)
            elif param.arg == "input":
                vals.append(INPUT_VAL)
            elif config_params:
                # ``__init__`` parameters *are* the configuration.
                vals.append(CONFIG_VAL)
            else:
                vals.append(BOTTOM)
        return tuple(vals)

    # -- interprocedural summaries -----------------------------------------

    def _eval_method(self, md: MethodDef, args: Tuple[AbsVal, ...]) -> AbsVal:
        key = (
            md.definer.__qualname__,
            md.name,
            args,
            self._collect_ops,
            self._collect_config,
        )
        if key in self._summaries:
            return self._summaries[key]
        if key in self._active:
            return BOTTOM  # recursion: converge at bottom
        self._active.add(key)
        try:
            frame = _Frame()
            params = md.node.args.args
            for index, param in enumerate(params):
                frame.env[param.arg] = (
                    args[index] if index < len(args) else BOTTOM
                )
            defaults = md.node.args.defaults
            if defaults:
                for param, default in zip(params[-len(defaults):], defaults):
                    if param.arg not in frame.env or (
                        frame.env[param.arg] == BOTTOM
                        and len(args) <= params.index(param)
                    ):
                        frame.env[param.arg] = self._eval(
                            md, default, frame
                        )
            returns: List[AbsVal] = []
            self._exec_block(md, md.node.body, frame, returns)
            if not returns:
                returns.append(const_val(None))
            result = join_all(returns)
        finally:
            self._active.discard(key)
        self._summaries[key] = result
        return result

    def _bind_call(
        self,
        md: MethodDef,
        pos: Sequence[AbsVal],
        kw: Dict[str, AbsVal],
        self_val: Optional[AbsVal],
    ) -> Tuple[AbsVal, ...]:
        params = [p.arg for p in md.node.args.args]
        bound: List[AbsVal] = []
        supplied = ([self_val] if self_val is not None else []) + list(pos)
        for index, name in enumerate(params):
            if index < len(supplied):
                bound.append(supplied[index])
            elif name in kw:
                bound.append(kw[name])
            else:
                bound.append(BOTTOM)
        return tuple(bound)

    # -- statements ---------------------------------------------------------

    def _exec_block(
        self,
        md: MethodDef,
        stmts: Sequence[ast.stmt],
        frame: _Frame,
        returns: List[AbsVal],
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(md, stmt, frame, returns)

    def _join_env(
        self, base: Dict[str, AbsVal], other: Dict[str, AbsVal]
    ) -> Dict[str, AbsVal]:
        out: Dict[str, AbsVal] = {}
        for name in set(base) | set(other):
            a = base.get(name, BOTTOM)
            b = other.get(name, BOTTOM)
            out[name] = join(a, b)
        return out

    def _exec_stmt(
        self,
        md: MethodDef,
        stmt: ast.stmt,
        frame: _Frame,
        returns: List[AbsVal],
    ) -> None:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                returns.append(const_val(None))
            else:
                returns.append(self._eval(md, stmt.value, frame))
        elif isinstance(stmt, ast.Assign):
            value = self._eval(md, stmt.value, frame)
            for target in stmt.targets:
                self._assign(md, target, stmt.value, value, frame)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(md, stmt.value, frame)
                self._assign(md, stmt.target, stmt.value, value, frame)
        elif isinstance(stmt, ast.AugAssign):
            load = ast.copy_location(
                ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt
            ) if isinstance(stmt.target, ast.Name) else None
            left = (
                self._eval(md, load, frame) if load is not None else BOTTOM
            )
            right = self._eval(md, stmt.value, frame)
            value = self._binop_result(
                md, stmt, stmt.op, load or stmt.target, stmt.value, left, right
            )
            self._assign(md, stmt.target, stmt.value, value, frame)
        elif isinstance(stmt, ast.Expr):
            self._eval(md, stmt.value, frame)
        elif isinstance(stmt, ast.If):
            self._eval(md, stmt.test, frame)
            then_env = dict(frame.env)
            else_env = dict(frame.env)
            then_frame = _Frame()
            then_frame.env, then_frame.objs = then_env, dict(frame.objs)
            else_frame = _Frame()
            else_frame.env, else_frame.objs = else_env, dict(frame.objs)
            self._exec_block(md, stmt.body, then_frame, returns)
            self._exec_block(md, stmt.orelse, else_frame, returns)
            frame.env = self._join_env(then_frame.env, else_frame.env)
            frame.objs.update(then_frame.objs)
            frame.objs.update(else_frame.objs)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(md, stmt.iter, frame)
            element = _extract(iterable)
            self._assign(md, stmt.target, None, element, frame)
            for _ in range(2):  # two passes approximate the loop fixpoint
                snapshot = dict(frame.env)
                self._exec_block(md, stmt.body, frame, returns)
                frame.env = self._join_env(snapshot, frame.env)
            self._exec_block(md, stmt.orelse, frame, returns)
        elif isinstance(stmt, ast.While):
            self._eval(md, stmt.test, frame)
            for _ in range(2):
                snapshot = dict(frame.env)
                self._exec_block(md, stmt.body, frame, returns)
                self._eval(md, stmt.test, frame)
                frame.env = self._join_env(snapshot, frame.env)
            self._exec_block(md, stmt.orelse, frame, returns)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(md, stmt.exc, frame)
        elif isinstance(stmt, ast.Assert):
            self._eval(md, stmt.test, frame)
            if stmt.msg is not None:
                self._eval(md, stmt.msg, frame)
        elif isinstance(stmt, ast.Try):
            self._exec_block(md, stmt.body, frame, returns)
            for handler in stmt.handlers:
                handler_frame = _Frame()
                handler_frame.env = dict(frame.env)
                handler_frame.objs = dict(frame.objs)
                self._exec_block(md, handler.body, handler_frame, returns)
                frame.env = self._join_env(frame.env, handler_frame.env)
            self._exec_block(md, stmt.orelse, frame, returns)
            self._exec_block(md, stmt.finalbody, frame, returns)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(md, item.context_expr, frame)
            self._exec_block(md, stmt.body, frame, returns)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                try:
                    module = importlib.import_module(alias.name)
                except Exception:
                    continue
                frame.objs[alias.asname or alias.name.split(".")[0]] = module
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                return
            try:
                module = importlib.import_module(stmt.module)
            except Exception:
                return
            for alias in stmt.names:
                resolved = getattr(module, alias.name, _NOTFOUND)
                if resolved is not _NOTFOUND:
                    frame.objs[alias.asname or alias.name] = resolved
        elif isinstance(stmt, ast.FunctionDef):
            frame.env[stmt.name] = FUNCTION_VAL
        # Pass/Break/Continue/Global/Nonlocal: nothing to do.

    def _assign(
        self,
        md: MethodDef,
        target: ast.expr,
        value_node: Optional[ast.expr],
        value: AbsVal,
        frame: _Frame,
    ) -> None:
        if isinstance(target, ast.Name):
            frame.env[target.id] = value
            frame.objs.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (
                isinstance(value_node, ast.Tuple)
                and len(value_node.elts) == len(target.elts)
            ):
                for sub_target, sub_node in zip(target.elts, value_node.elts):
                    sub_value = self._eval(md, sub_node, frame)
                    self._assign(md, sub_target, sub_node, sub_value, frame)
            else:
                element = _extract(value)
                for sub_target in target.elts:
                    self._assign(md, sub_target, None, element, frame)
        elif isinstance(target, ast.Subscript):
            self._eval(md, target.slice, frame)
            if isinstance(target.value, ast.Name):
                name = target.value.id
                current = frame.env.get(name, BOTTOM)
                absorbed = AbsVal(
                    taint=_demote(value.taint),
                    kinds=value.kinds,
                )
                frame.env[name] = join(current, absorbed)
        elif isinstance(target, ast.Attribute):
            base = self._eval(md, target.value, frame)
            if base.role == "self" and self._collect_config:
                current = self.config_writes.get(target.attr, BOTTOM)
                self.config_writes[target.attr] = (
                    value if current == BOTTOM else join(current, value)
                )
        elif isinstance(target, ast.Starred):
            self._assign(md, target.value, None, _extract(value), frame)

    # -- expressions --------------------------------------------------------

    def _flag(self, md: MethodDef, node: ast.AST, detail: str) -> None:
        self.violations.append(
            TaintViolation(
                detail=detail,
                filename=md.filename,
                line=md.line_of(node),
            )
        )

    def _eval(self, md: MethodDef, node: ast.expr, frame: _Frame) -> AbsVal:
        if isinstance(node, ast.Constant):
            if node.value is Ellipsis:
                return BOTTOM
            return const_val(node.value)
        if isinstance(node, ast.Name):
            return self._eval_name(md, node, frame)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(md, node, frame)
        if isinstance(node, ast.Call):
            return self._eval_call(md, node, frame)
        if isinstance(node, ast.BinOp):
            left = self._eval(md, node.left, frame)
            right = self._eval(md, node.right, frame)
            return self._binop_result(
                md, node, node.op, node.left, node.right, left, right
            )
        if isinstance(node, ast.BoolOp):
            return join_all(self._eval(md, v, frame) for v in node.values)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(md, node.operand, frame)
            if isinstance(node.op, ast.Not):
                return AbsVal()
            if operand.taint == "direct":
                self._flag(md, node, "unary arithmetic on a process identifier")
            if (
                isinstance(node.op, ast.USub)
                and operand.kinds == frozenset({"const"})
                and operand.consts
            ):
                negated = tuple(
                    -c for c in operand.consts if isinstance(c, (int, float))
                )
                return AbsVal(kinds=operand.kinds, consts=negated)
            return AbsVal(kinds=operand.kinds, fields=operand.fields)
        if isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            side_vals = [self._eval(md, side, frame) for side in sides]
            if any(val.taint == "direct" for val in side_vals):
                for op in node.ops:
                    if not isinstance(op, EQUALITY_OPS):
                        self._flag(
                            md,
                            node,
                            f"non-equality comparison on a process "
                            f"identifier ({type(op).__name__})",
                        )
                        break
            return AbsVal()
        if isinstance(node, ast.IfExp):
            self._eval(md, node.test, frame)
            return join(
                self._eval(md, node.body, frame),
                self._eval(md, node.orelse, frame),
            )
        if isinstance(node, ast.Subscript):
            base = self._eval(md, node.value, frame)
            index = self._eval(md, node.slice, frame)
            if index.taint == "direct":
                self._flag(md, node, "process identifier used as an index")
            if isinstance(node.slice, ast.Slice):
                return AbsVal(taint=base.taint, kinds=base.kinds)
            taint = "direct" if base.taint in ("container", "direct") else "none"
            return AbsVal(taint=taint, kinds=base.kinds)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(md, part, frame)
            return BOTTOM
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            elems = [self._eval(md, elt, frame) for elt in node.elts]
            kinds = frozenset().union(*(e.kinds for e in elems)) if elems else frozenset()
            taint = (
                "container"
                if any(e.taint != "none" for e in elems)
                else "none"
            )
            return AbsVal(taint=taint, kinds=kinds)
        if isinstance(node, ast.Dict):
            parts = [
                self._eval(md, part, frame)
                for part in [*node.keys, *node.values]
                if part is not None
            ]
            kinds = frozenset().union(*(p.kinds for p in parts)) if parts else frozenset()
            taint = (
                "container"
                if any(p.taint != "none" for p in parts)
                else "none"
            )
            return AbsVal(taint=taint, kinds=kinds)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_frame = self._comp_frame(md, node.generators, frame)
            element = self._eval(md, node.elt, comp_frame)
            taint = "container" if element.taint != "none" else "none"
            return AbsVal(taint=taint, kinds=element.kinds)
        if isinstance(node, ast.DictComp):
            comp_frame = self._comp_frame(md, node.generators, frame)
            key = self._eval(md, node.key, comp_frame)
            value = self._eval(md, node.value, comp_frame)
            merged = join(key, value)
            taint = "container" if merged.taint != "none" else "none"
            return AbsVal(taint=taint, kinds=merged.kinds)
        if isinstance(node, ast.Lambda):
            lambda_frame = _Frame()
            lambda_frame.objs = dict(frame.objs)
            for param in node.args.args:
                lambda_frame.env[param.arg] = BOTTOM
            self._eval(md, node.body, lambda_frame)
            return FUNCTION_VAL
        if isinstance(node, ast.JoinedStr):
            taint = "none"
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    val = self._eval(md, part.value, frame)
                    taint = _taint_max(taint, _demote(val.taint))
            return AbsVal(taint=taint)
        if isinstance(node, ast.FormattedValue):
            return self._eval(md, node.value, frame)
        if isinstance(node, ast.Starred):
            return self._eval(md, node.value, frame)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(md, node.value, frame)
            self._assign(md, node.target, node.value, value, frame)
            return value
        return BOTTOM

    def _comp_frame(
        self,
        md: MethodDef,
        generators: Sequence[ast.comprehension],
        frame: _Frame,
    ) -> _Frame:
        comp_frame = _Frame()
        comp_frame.env = dict(frame.env)
        comp_frame.objs = dict(frame.objs)
        for gen in generators:
            iterable = self._eval(md, gen.iter, comp_frame)
            self._assign(md, gen.target, None, _extract(iterable), comp_frame)
            for condition in gen.ifs:
                # Conditions are evaluated for sink detection only; a
                # filter over a tainted view does not taint the result
                # (``sum(1 for v in myview if v == self.pid)`` is clean).
                self._eval(md, condition, comp_frame)
        return comp_frame

    def _eval_name(
        self, md: MethodDef, node: ast.Name, frame: _Frame
    ) -> AbsVal:
        if node.id in frame.env:
            return frame.env[node.id]
        if node.id == "pid":
            return PID_VAL
        resolved = self._resolve_name(md, node.id, frame)
        if resolved is _NOTFOUND:
            return BOTTOM
        if isinstance(resolved, _SCALAR_TYPES):
            return const_val(resolved)
        return FUNCTION_VAL

    def _resolve_name(self, md: MethodDef, name: str, frame: _Frame) -> Any:
        if name in frame.objs:
            return frame.objs[name]
        ns = self.ir.module_ns(md.definer)
        if name in ns:
            return ns[name]
        return getattr(builtins, name, _NOTFOUND)

    def _eval_attribute(
        self, md: MethodDef, node: ast.Attribute, frame: _Frame
    ) -> AbsVal:
        base = self._eval(md, node.value, frame)
        if node.attr == "pid":
            return AbsVal(
                taint="direct", kinds=frozenset({"pid"}) | base.kinds
            )
        if base.role == "self":
            if node.attr == "input":
                return INPUT_VAL
            if node.attr in self.ir.config_attrs:
                return self.ir.config_attrs[node.attr]
            if node.attr in self.ir.methods:
                return FUNCTION_VAL
            return CONFIG_VAL
        if base.role == "state":
            if node.attr in self.ir.state_defaults:
                val = self.fields_env.get(
                    node.attr, self.ir.state_defaults[node.attr]
                )
                consts = val.consts if val.kinds <= {"const"} else ()
                taint = "container" if "pid" in val.kinds else "none"
                return AbsVal(
                    taint=taint,
                    kinds=val.kinds,
                    consts=consts,
                    fields=frozenset({node.attr}),
                )
            return AbsVal(fields=frozenset({node.attr}))
        if base.role == "automaton":
            return AbsVal(kinds=frozenset({"forwarded"}))
        taint = "direct" if base.taint in ("container", "direct") else "none"
        return AbsVal(taint=taint, kinds=base.kinds)

    # -- binary operators ---------------------------------------------------

    def _binop_result(
        self,
        md: MethodDef,
        node: ast.AST,
        op: ast.operator,
        left_node: ast.expr,
        right_node: ast.expr,
        left: AbsVal,
        right: AbsVal,
    ) -> AbsVal:
        if left.taint == "direct" or right.taint == "direct":
            self._flag(
                md,
                node,
                f"arithmetic on a process identifier ({type(op).__name__})",
            )
            # Flag once; downstream uses of the result are not re-tainted.
        counters = self.ir.bounded_counters
        witnessed = bool((left.fields | right.fields) & counters) or any(
            self._terminal_name(n) in counters
            for n in (left_node, right_node)
        )
        if witnessed:
            return AbsVal(kinds=frozenset({"counter"}))
        combined = left.kinds | right.kinds
        # Collection ops (set union, tuple/list concatenation) carry
        # provenance through unchanged; they never *create* values.
        if isinstance(op, ast.BitOr) or (
            isinstance(op, ast.Add)
            and (
                isinstance(left_node, (ast.Tuple, ast.List, ast.Set))
                or isinstance(right_node, (ast.Tuple, ast.List, ast.Set))
                or left.taint == "container"
                or right.taint == "container"
            )
        ):
            taint = _taint_max(_demote(left.taint), _demote(right.taint))
            return AbsVal(taint=taint, kinds=combined)
        if combined and combined <= {"const", "config"}:
            return AbsVal(kinds=frozenset({"config"}))
        return AbsVal(kinds=frozenset({"unbounded"}))

    @staticmethod
    def _terminal_name(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    # -- calls --------------------------------------------------------------

    def _eval_call(
        self, md: MethodDef, node: ast.Call, frame: _Frame
    ) -> AbsVal:
        args = [self._eval(md, arg, frame) for arg in node.args]
        kwargs: Dict[str, AbsVal] = {}
        extra: List[AbsVal] = []
        for kw in node.keywords:
            val = self._eval(md, kw.value, frame)
            if kw.arg is None:
                extra.append(val)
            else:
                kwargs[kw.arg] = val
        all_vals = args + list(kwargs.values()) + extra

        func = node.func
        if isinstance(func, ast.Attribute):
            return self._eval_method_call(
                md, node, func, args, kwargs, all_vals, frame
            )
        if isinstance(func, ast.Name):
            if func.id in frame.env:
                return self._generic_call(all_vals)
            resolved = self._resolve_name(md, func.id, frame)
            return self._classify_call(
                md, node, func.id, resolved, args, kwargs, all_vals
            )
        self._eval(md, func, frame)
        return self._generic_call(all_vals)

    def _eval_method_call(
        self,
        md: MethodDef,
        node: ast.Call,
        func: ast.Attribute,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
        all_vals: List[AbsVal],
        frame: _Frame,
    ) -> AbsVal:
        # super().m(...) — continue past the defining class in the MRO.
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            target = self.ir.resolve_after(md.definer, func.attr)
            if target is None:
                return BOTTOM  # ProcessAutomaton default: analysis boundary
            bound = self._bind_call(target, args, kwargs, SELF_VAL)
            return self._eval_method(target, bound)

        base = self._eval(md, func.value, frame)
        if base.role == "self":
            target = self.ir.methods.get(func.attr)
            if target is None:
                return BOTTOM  # e.g. require_running / pc_key: boundary
            self_val = None if target.is_static else SELF_VAL
            bound = self._bind_call(target, args, kwargs, self_val)
            return self._eval_method(target, bound)
        if base.role == "automaton":
            return AbsVal(kinds=frozenset({"forwarded"}))
        # Resolve module-attribute calls (``dataclasses.replace(...)``).
        if isinstance(func.value, ast.Name):
            module = frame.objs.get(func.value.id)
            if module is None:
                module = self.ir.module_ns(md.definer).get(func.value.id)
            if isinstance(module, types.ModuleType):
                resolved = getattr(module, func.attr, _NOTFOUND)
                if resolved is not _NOTFOUND:
                    return self._classify_call(
                        md, node, func.attr, resolved, args, kwargs, all_vals
                    )
        # Unknown method on an arbitrary value: union in the base too
        # (``self.domain.index(x)`` is configuration-derived).
        kinds = base.kinds
        for val in all_vals:
            kinds = kinds | val.kinds
        taint = _demote(base.taint)
        for val in all_vals:
            taint = _taint_max(taint, _demote(val.taint))
        return AbsVal(taint=taint, kinds=kinds)

    def _classify_call(
        self,
        md: MethodDef,
        node: ast.Call,
        name: str,
        resolved: Any,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
        all_vals: List[AbsVal],
    ) -> AbsVal:
        ir = self.ir
        if resolved is _NOTFOUND:
            if name in NUMERIC_BUILTINS:
                return self._numeric_builtin(md, node, name, all_vals)
            return self._generic_call(all_vals)

        if isinstance(resolved, type):
            if resolved.__module__ == "repro.runtime.ops" and resolved.__name__ in (
                "ReadOp",
                "WriteOp",
            ):
                return self._op_site(md, node, resolved.__name__, args, kwargs)
            if issubclass(resolved, ProcessAutomaton):
                return AUTOMATON_VAL
            if ir.state_cls is not None and resolved is ir.state_cls:
                return self._state_ctor(args, kwargs)
            # Record constructor: provenance flows through, payloads and
            # direct taint do not (the record is a container).
            kinds = frozenset().union(*(v.kinds for v in all_vals)) if all_vals else frozenset()
            kinds = kinds - {"const"} | ({"const"} if any("const" in v.kinds for v in all_vals) else frozenset())
            taint = "none"
            for val in all_vals:
                taint = _taint_max(taint, _demote(val.taint))
            return AbsVal(taint=taint, kinds=kinds)

        if resolved is dataclasses.replace or (
            callable(resolved)
            and getattr(resolved, "__name__", "") == "replace"
            and getattr(resolved, "__module__", "") == "dataclasses"
        ):
            return self._replace_call(args, kwargs, all_vals)

        if isinstance(resolved, types.BuiltinFunctionType) or (
            getattr(resolved, "__module__", None) == "builtins"
        ):
            if name in NUMERIC_BUILTINS:
                return self._numeric_builtin(md, node, name, all_vals)
            return self._generic_call(all_vals)

        if isinstance(resolved, types.FunctionType) and getattr(
            resolved, "__module__", ""
        ).startswith("repro."):
            # Module-level helper: a taint boundary (helpers receive
            # values, not the identity-bearing role) that also strips
            # threshold/config parameters from the provenance union.
            kinds = frozenset().union(*(v.kinds for v in all_vals)) if all_vals else frozenset()
            return AbsVal(kinds=kinds - {"config"})

        if name in NUMERIC_BUILTINS:
            return self._numeric_builtin(md, node, name, all_vals)
        return self._generic_call(all_vals)

    def _numeric_builtin(
        self,
        md: MethodDef,
        node: ast.Call,
        name: str,
        all_vals: List[AbsVal],
    ) -> AbsVal:
        if any(val.taint in ("direct", "container") for val in all_vals):
            self._flag(
                md,
                node,
                f"process identifier passed to numeric builtin {name}()",
            )
        kinds = frozenset().union(*(v.kinds for v in all_vals)) if all_vals else frozenset()
        return AbsVal(kinds=kinds)

    def _generic_call(self, all_vals: List[AbsVal]) -> AbsVal:
        kinds = frozenset().union(*(v.kinds for v in all_vals)) if all_vals else frozenset()
        taint = "none"
        for val in all_vals:
            taint = _taint_max(taint, _demote(val.taint))
        return AbsVal(taint=taint, kinds=kinds)

    def _state_ctor(
        self, args: List[AbsVal], kwargs: Dict[str, AbsVal]
    ) -> AbsVal:
        assert self.ir.state_cls is not None
        field_list = dataclasses.fields(self.ir.state_cls)
        for index, f in enumerate(field_list):
            if index < len(args):
                val = args[index]
            elif f.name in kwargs:
                val = kwargs[f.name]
            else:
                val = self.ir.state_defaults.get(f.name, BOTTOM)
            self._record_field_write(f.name, val)
        return STATE_VAL

    def _replace_call(
        self,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
        all_vals: List[AbsVal],
    ) -> AbsVal:
        if args and args[0].role == "state":
            for name, val in kwargs.items():
                self._record_field_write(name, val)
            return STATE_VAL
        return self._generic_call(all_vals)

    def _record_field_write(self, name: str, val: AbsVal) -> None:
        stripped = AbsVal(
            taint="none",
            kinds=val.kinds,
            consts=val.consts,
        )
        current = self.field_writes.get(name, BOTTOM)
        self.field_writes[name] = (
            stripped if current == BOTTOM else join(current, stripped)
        )

    def _op_site(
        self,
        md: MethodDef,
        node: ast.Call,
        op_name: str,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
    ) -> AbsVal:
        index = args[0] if args else kwargs.get("index", BOTTOM)
        value: Optional[AbsVal] = None
        if op_name == "WriteOp":
            value = args[1] if len(args) > 1 else kwargs.get("value", BOTTOM)
        if index.taint == "direct":
            self._flag(
                md,
                node,
                f"process identifier used as a {op_name} register index",
            )
        if self._collect_ops:
            self.op_sites.append(
                OpSite(
                    kind="read" if op_name == "ReadOp" else "write",
                    index=index,
                    value=value,
                    filename=md.filename,
                    line=md.line_of(node),
                )
            )
        return AbsVal(role="ownop")


# ---------------------------------------------------------------------------
# Whole-class analysis results
# ---------------------------------------------------------------------------


@dataclass
class ClassAnalysis:
    """Everything the passes consume for one automaton class."""

    ir: ClassIR
    fields_env: Dict[str, AbsVal]
    op_sites: List[OpSite]
    next_op_return: AbsVal

    def footprint(self) -> AutomatonFootprint:
        """The statically inferred register footprint."""
        writes_pid = writes_input = writes_memory = False
        writes_counter = writes_config = False
        forwards = "forwarded" in self.next_op_return.kinds
        write_constants: List[Any] = []
        index_constants: List[Any] = []
        symbolic = False
        for site in self.op_sites:
            index = site.index
            if index.kinds <= {"const"} and index.consts:
                for payload in index.consts:
                    if payload not in index_constants:
                        index_constants.append(payload)
            else:
                symbolic = True
            if site.kind != "write" or site.value is None:
                continue
            kinds = site.value.kinds
            writes_pid = writes_pid or "pid" in kinds
            writes_input = writes_input or "input" in kinds
            writes_memory = writes_memory or "memory" in kinds
            writes_counter = writes_counter or "counter" in kinds
            writes_config = writes_config or "config" in kinds
            forwards = forwards or "forwarded" in kinds
            if "const" in kinds:
                for payload in site.value.consts:
                    if payload not in write_constants:
                        write_constants.append(payload)
        return AutomatonFootprint(
            writes_pid=writes_pid,
            writes_input=writes_input,
            writes_memory=writes_memory,
            writes_counter=writes_counter,
            writes_config=writes_config,
            write_constants=tuple(sorted(write_constants, key=repr)),
            index_constants=tuple(sorted(index_constants, key=repr)),
            symbolic_indexing=symbolic,
            forwards_values=forwards,
            no_ops=not self.op_sites,
        )


_ENTRY_SKIP = frozenset({"__init__"})

_FIXPOINT_CAP = 10


def analyze_class(cls: Type[ProcessAutomaton]) -> Optional[ClassAnalysis]:
    """Run the field fixpoint + op-site collection for one class.

    Returns ``None`` when the class source is unavailable.
    """
    ir = build_class_ir(cls)
    if ir is None:
        return None
    fields_env: Dict[str, AbsVal] = dict(ir.state_defaults)
    evaluator = Evaluator(ir, fields_env)
    for _ in range(_FIXPOINT_CAP):
        evaluator = Evaluator(ir, fields_env)
        for name, md in ir.methods.items():
            if name in _ENTRY_SKIP or name.startswith("__"):
                continue
            evaluator.eval_entry(md)
        new_env = {
            name: join(
                ir.state_defaults.get(name, BOTTOM),
                evaluator.field_writes.get(name, BOTTOM),
            )
            for name in set(ir.state_defaults) | set(evaluator.field_writes)
        }
        if new_env == fields_env:
            break
        fields_env = new_env
    return ClassAnalysis(
        ir=ir,
        fields_env=fields_env,
        op_sites=evaluator.op_sites,
        next_op_return=evaluator.next_op_return,
    )


def taint_violations(
    cls: Type[ProcessAutomaton], analysis: Optional[ClassAnalysis] = None
) -> Optional[List[TaintViolation]]:
    """§2-discipline violations in ``cls``'s *own* body (deduplicated).

    Violations inside inherited methods belong to the defining class's
    own check; this keeps the per-class attribution of the original
    syntactic pass.  Returns ``None`` when the source is unavailable.
    """
    if analysis is None:
        analysis = analyze_class(cls)
    if analysis is None:
        return None
    evaluator = Evaluator(analysis.ir, analysis.fields_env)
    own = {id(md.node) for md in analysis.ir.own_methods()}
    for md in analysis.ir.own_methods():
        evaluator.eval_entry(md, collect_config=(md.name == "__init__"))
    seen: Set[Tuple[str, int, str]] = set()
    result: List[TaintViolation] = []
    for violation in evaluator.violations:
        key = (violation.filename, violation.line, violation.detail)
        if key in seen:
            continue
        seen.add(key)
        result.append(violation)
    del own  # attribution is by recorded file/line, which follows the body
    return result
