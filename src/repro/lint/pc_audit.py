"""PC-label auditor: every location counter maps to a paper line.

Section 6.1's covering argument reasons over "the values of the
registers and the location counters" — the reproduction's automata keep
that location counter as the ``pc`` field of their immutable state.
This pass pins the correspondence down and keeps it honest:

* every shipped automaton must declare
  :attr:`~repro.runtime.automaton.ProcessAutomaton.PC_LINES`, mapping
  each pc value (canonicalised through
  :meth:`~repro.runtime.automaton.ProcessAutomaton.pc_key`) to the
  paper figure/section line it implements;
* **static**: every pc string literal appearing in the class body
  (``replace(state, pc="...")`` keywords, ``pc == "..."`` comparisons,
  ``pc in ("...", ...)`` membership tests) must have an entry — a pc
  that was renamed in code but not in the annotation fails the lint;
* **dynamic**: the bounded explorer runs each registry instance and
  records which annotated pcs are actually visited.  An annotated pc
  that no reachable state exhibits is dead documentation: an ``error``
  when the exploration was exhaustive, an ``info`` when it hit its
  budget (the pc may live beyond the horizon).

The exploration piggybacks on the invariant hook and stops as soon as
every annotated pc has been seen, so the audit is much cheaper than a
full state-space sweep.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from repro.lint.findings import Finding
from repro.lint.registry import LintTarget, lint_targets, shipped_automaton_classes
from repro.lint.symmetry import _short, class_source_tree
from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.exploration import explore
from repro.runtime.system import System

PASS = "pc-audit"

#: Sentinel "violation" used to stop the explorer early once every
#: annotated pc has been observed.
_ALL_SEEN = "__pc_audit_all_seen__"


def _is_pc_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "pc":
        return True
    if isinstance(node, ast.Name) and node.id == "pc":
        return True
    return False


def _string_constants(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values: List[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                values.append(elt.value)
        return values
    return []


def pc_literals_in_class(cls: Type[ProcessAutomaton]) -> Dict[str, int]:
    """pc string literals used in ``cls``'s own body -> first line seen.

    Collected from ``pc="..."`` keyword arguments (``replace`` and state
    constructors), comparisons against a ``pc`` expression, and
    membership tests of a ``pc`` expression in a literal tuple.
    """
    parsed = class_source_tree(cls)
    if parsed is None:
        return {}
    node, _filename, first_line = parsed
    literals: Dict[str, int] = {}

    def record(value: str, lineno: int) -> None:
        literals.setdefault(value, first_line + lineno - 1)

    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            for keyword in sub.keywords:
                if keyword.arg == "pc":
                    for value in _string_constants(keyword.value):
                        record(value, keyword.value.lineno)
        elif isinstance(sub, ast.Compare):
            sides = [sub.left, *sub.comparators]
            if any(_is_pc_expr(side) for side in sides):
                for side in sides:
                    for value in _string_constants(side):
                        record(value, side.lineno)
    return literals


def check_class(cls: Type[ProcessAutomaton]) -> List[Finding]:
    """Static PC-annotation findings for one automaton class."""
    parsed = class_source_tree(cls)
    filename = _short(parsed[1]) if parsed is not None else "<unknown>"
    pc_lines = cls.PC_LINES
    if pc_lines is None:
        return [
            Finding(
                pass_name=PASS,
                severity="error",
                subject=cls.__qualname__,
                detail="no PC_LINES annotation: every automaton must map its "
                "pc values to paper figure lines",
                location=filename,
                rule="missing-pc-lines",
            )
        ]
    findings: List[Finding] = []
    for literal, line in sorted(pc_literals_in_class(cls).items()):
        key = cls.pc_key(literal)
        if key not in pc_lines:
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error",
                    subject=cls.__qualname__,
                    detail=f"pc {literal!r} (key {key!r}) has no PC_LINES "
                    f"entry",
                    location=f"{filename}:{line}",
                    rule="unannotated-pc",
                )
            )
    return findings


def run_pc_static_pass(
    classes: Optional[Iterable[Type[ProcessAutomaton]]] = None,
) -> List[Finding]:
    """Static PC audit over ``classes`` (default: all shipped)."""
    target_classes: Sequence[Type[ProcessAutomaton]] = (
        list(classes) if classes is not None else shipped_automaton_classes()
    )
    findings: List[Finding] = []
    for cls in target_classes:
        findings.extend(check_class(cls))
    return findings


def run_pc_reachability(target: LintTarget) -> List[Finding]:
    """Explore one registry instance; report never-visited PC_LINES keys."""
    from repro.memory.naming import RandomNaming

    naming = (
        RandomNaming(target.naming_seed) if target.naming_seed is not None else None
    )
    system = System(
        target.factory(), target.inputs, naming=naming, record_trace=False
    )

    expected: Dict[Type[ProcessAutomaton], Set[str]] = {}
    observed: Dict[Type[ProcessAutomaton], Set[str]] = {}
    missing_pc: Set[str] = set()
    for automaton in system.automata.values():
        cls = type(automaton)
        if cls.PC_LINES is not None:
            expected.setdefault(cls, set(cls.PC_LINES))
            observed.setdefault(cls, set())

    def collector(sys_: System) -> Optional[str]:
        for pid in sys_.scheduler.pids:
            runtime = sys_.scheduler.runtime(pid)
            cls = type(runtime.automaton)
            pc = getattr(runtime.state, "pc", None)
            if pc is None:
                missing_pc.add(cls.__qualname__)
                continue
            if cls in observed:
                observed[cls].add(cls.pc_key(pc))
        if all(expected[cls] <= observed[cls] for cls in expected):
            return _ALL_SEEN  # stop the search: nothing left to discover
        return None

    result = explore(
        system, collector, max_states=target.max_states, max_depth=target.max_depth
    )
    findings: List[Finding] = []
    for name in sorted(missing_pc):
        findings.append(
            Finding(
                pass_name=PASS,
                severity="error",
                subject=name,
                detail="state has no pc attribute — location counters are "
                "part of the model (§6.1)",
                location=f"run:{target.label}",
                rule="missing-pc-field",
            )
        )
    if result.violation == _ALL_SEEN:
        return findings  # every annotated pc was visited

    exhaustive = result.complete
    for cls in sorted(expected, key=lambda c: c.__qualname__):
        for key in sorted(expected[cls] - observed[cls]):
            line = (cls.PC_LINES or {}).get(key, "?")
            findings.append(
                Finding(
                    pass_name=PASS,
                    severity="error" if exhaustive else "info",
                    subject=cls.__qualname__,
                    detail=(
                        f"annotated pc {key!r} ({line}) never reached"
                        + (
                            " in exhaustive exploration"
                            if exhaustive
                            else f" within budget ({result.summary()})"
                        )
                    ),
                    location=f"run:{target.label}",
                    rule="dead-pc",
                )
            )
    return findings


def run_pc_reachability_pass(
    targets: Optional[Sequence[LintTarget]] = None,
) -> List[Finding]:
    """Dynamic PC audit over all registry targets (default registry)."""
    findings: List[Finding] = []
    for target in targets if targets is not None else lint_targets():
        findings.extend(run_pc_reachability(target))
    return findings
