"""repro.lint — static analysis and runtime audits for the model's rules.

The paper's model bakes structural disciplines into every algorithm,
and this package checks all of them mechanically.  Since lint v2 the
static passes share one foundation: :mod:`repro.lint.ir` lowers each
automaton's methods into a def-use dataflow IR with an abstract value
domain (provenance kinds, pid-taint, constant payloads), and the passes
are queries over the analysis result rather than AST pattern-matches.

* **symmetry** (§2): process identifiers may only be written, read and
  compared for equality — :mod:`repro.lint.taint` tracks
  identifier-derived *values* through locals, tuples, helper calls and
  state fields and flags arithmetic, ordering, indexing or hashing on
  them (:mod:`repro.lint.symmetry` remains the compatibility façade);
* **footprints**: the register write-footprint inferred from the IR
  must match the :class:`~repro.problems.spec.AutomatonFootprint`
  declared in the problem registry and be coupled to the trusted
  symmetry-hook claims — :mod:`repro.lint.footprints`;
* **domains**: every value written to a register must come from a
  finite domain (inputs, pids, constants, witnessed-bounded counters)
  — :mod:`repro.lint.domains`;
* **memory anonymity** (§2, §3.2): algorithms address registers only
  through their private :class:`~repro.memory.anonymous.MemoryView`,
  never the physical array — :mod:`repro.lint.anonymity` checks this
  statically and re-checks it at runtime with
  :class:`~repro.memory.anonymous.MemoryAudit`;
* **atomicity** (§2, "indivisible action"): the real-thread backend
  must keep every register access lock-guarded —
  :mod:`repro.lint.races` records accesses and runs a vector-clock
  race and lock-discipline analysis over them.

:mod:`repro.lint.pc_audit` additionally pins every automaton ``pc``
value to a paper figure line (:attr:`ProcessAutomaton.PC_LINES`) and
uses the bounded explorer to prove the annotated lines are reachable.

Findings carry stable IDs (:func:`~repro.lint.findings.assign_ids`);
the CLI can emit them as a table, deterministic JSON or SARIF 2.1.0,
and suppress known ones through the checked-in ``lint-baseline.json``
(:mod:`repro.lint.baseline`).

Entry point: ``python -m repro lint`` (:mod:`repro.lint.cli`).
"""

from repro.lint.findings import (
    Finding,
    assign_ids,
    errors_in,
    failures_in,
    finding_key,
    worst_severity,
)
from repro.lint.registry import (
    LintTarget,
    lint_targets,
    shipped_automaton_classes,
)

__all__ = [
    "Finding",
    "LintTarget",
    "assign_ids",
    "errors_in",
    "failures_in",
    "finding_key",
    "lint_targets",
    "shipped_automaton_classes",
    "worst_severity",
]
