"""repro.lint — static analysis and runtime audits for the model's rules.

The paper's model bakes three structural disciplines into every
algorithm, and this package checks all of them mechanically:

* **symmetry** (§2): process identifiers may only be written, read and
  compared for equality — :mod:`repro.lint.symmetry` walks each
  automaton's AST and flags arithmetic, ordering, indexing or hashing
  on identifiers;
* **memory anonymity** (§2, §3.2): algorithms address registers only
  through their private :class:`~repro.memory.anonymous.MemoryView`,
  never the physical array — :mod:`repro.lint.anonymity` checks this
  statically and re-checks it at runtime with
  :class:`~repro.memory.anonymous.MemoryAudit`;
* **atomicity** (§2, "indivisible action"): the real-thread backend
  must keep every register access lock-guarded —
  :mod:`repro.lint.races` records accesses and runs a vector-clock
  race and lock-discipline analysis over them.

:mod:`repro.lint.pc_audit` additionally pins every automaton ``pc``
value to a paper figure line (:attr:`ProcessAutomaton.PC_LINES`) and
uses the bounded explorer to prove the annotated lines are reachable.

Entry point: ``python -m repro lint`` (:mod:`repro.lint.cli`).
"""

from repro.lint.findings import Finding, errors_in, worst_severity
from repro.lint.registry import (
    LintTarget,
    lint_targets,
    shipped_automaton_classes,
)

__all__ = [
    "Finding",
    "LintTarget",
    "errors_in",
    "lint_targets",
    "shipped_automaton_classes",
    "worst_severity",
]
