"""Machine-readable lint output: deterministic JSON and SARIF 2.1.0.

Both emitters consume the ``(finding_id, Finding)`` pairs from
:func:`repro.lint.findings.assign_ids` and sort by finding ID, so two
runs over the same code produce byte-identical output regardless of
pass scheduling — a property the golden test pins.

The SARIF document is the minimal valid 2.1.0 shape GitHub code
scanning accepts: one run, one driver, one ``rules`` entry per distinct
``<pass>.<rule>`` pair, one ``results`` entry per finding.  Severities
map ``info``→``note``, ``warning``→``warning``, ``error``→``error``.
``file.py:line`` locations become physical locations; run-labelled
locations (``run:...``, ``events:...``) stay in the message only, since
SARIF locations must name artifacts.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"info": "note", "warning": "warning", "error": "error"}

#: ``src/repro/lint/ir.py:123``-style locations (no URL schemes, no
#: ``run:`` / ``events:`` labels).
_FILE_LINE = re.compile(r"^(?P<file>[\w./-]+\.py):(?P<line>\d+)$")


def _sorted(
    identified: Sequence[Tuple[str, Finding]]
) -> List[Tuple[str, Finding]]:
    return sorted(identified, key=lambda pair: pair[0])


def render_json(identified: Sequence[Tuple[str, Finding]]) -> str:
    """All findings as a deterministic JSON document (sorted by ID)."""
    payload = {
        "version": 1,
        "findings": [
            {
                "id": finding_id,
                "pass": finding.pass_name,
                "rule": finding.rule or "general",
                "severity": finding.severity,
                "subject": finding.subject,
                "detail": finding.detail,
                "location": finding.location,
            }
            for finding_id, finding in _sorted(identified)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(identified: Sequence[Tuple[str, Finding]]) -> str:
    """All findings as a SARIF 2.1.0 document (sorted by ID)."""
    ordered = _sorted(identified)
    rules: Dict[str, Dict[str, Any]] = {}
    results: List[Dict[str, Any]] = []
    for finding_id, finding in ordered:
        rule_id = f"{finding.pass_name}.{finding.rule or 'general'}"
        rules.setdefault(
            rule_id,
            {
                "id": rule_id,
                "name": rule_id.replace(".", "-"),
                "shortDescription": {
                    "text": f"repro lint {finding.pass_name} pass, "
                    f"rule {finding.rule or 'general'}"
                },
            },
        )
        result: Dict[str, Any] = {
            "ruleId": rule_id,
            "level": _LEVELS[finding.severity],
            "message": {
                "text": f"{finding.subject}: {finding.detail}"
                + (f" [{finding.location}]" if finding.location else "")
            },
            "partialFingerprints": {"reproLintId/v1": finding_id},
        }
        match = _FILE_LINE.match(finding.location)
        if match:
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": match.group("file")},
                        "region": {"startLine": int(match.group("line"))},
                    }
                }
            ]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [rules[key] for key in sorted(rules)],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
