"""Anonymity linter: automata touch memory only through their view.

The anonymous model (§2) gives each process its *own* register
numbering; in the reproduction that numbering lives inside
:class:`~repro.memory.anonymous.MemoryView`, and the contract is that
automata hold a view and nothing else.  An automaton that reaches the
physical :class:`~repro.memory.register.RegisterArray` — or that asks
its view to translate between private and physical indices — has
smuggled global register names back in and voided the model.

Two complementary checks:

* **static** (:func:`check_class` / :func:`run_anonymity_pass`): flag
  any reference, inside an automaton class body, to the substrate types
  (``AnonymousMemory``, ``RegisterArray``) or to the view's
  translation/observation surface (``physical_index_of``,
  ``view_index_of``, ``permutation``, ``snapshot``, ``restore``, or the
  private attributes behind them).  Spec checkers and the lower-bound
  constructions use that surface legitimately — but they are not
  automata, and the pass only looks at automaton classes.
* **runtime** (:func:`run_anonymity_audit`): install a
  :class:`~repro.memory.anonymous.MemoryAudit` on a small instance and
  execute it; every counted register access must have been announced by
  a view.  This catches what no AST scan can: an automaton that was
  *handed* a substrate reference through its constructor and uses it
  under an innocent attribute name.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Type

from repro.lint.findings import Finding
from repro.lint.registry import LintTarget, lint_targets, shipped_automaton_classes
from repro.lint.symmetry import _short, class_source_tree
from repro.runtime.automaton import ProcessAutomaton

PASS = "anonymity"

#: Substrate type names an automaton body must never mention.
FORBIDDEN_NAMES = frozenset({"AnonymousMemory", "RegisterArray"})

#: Attribute accesses that pierce the private-numbering abstraction.
FORBIDDEN_ATTRS = frozenset(
    {
        "physical_index_of",
        "view_index_of",
        "permutation",
        "snapshot",
        "restore",
        "_perm",
        "_inverse",
        "_array",
        "array",
    }
)


class _AnonymityVisitor(ast.NodeVisitor):
    def __init__(self, subject: str, filename: str, first_line: int) -> None:
        self.subject = subject
        self.filename = filename
        self.first_line = first_line
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, detail: str, rule: str) -> None:
        line = self.first_line + getattr(node, "lineno", 1) - 1
        self.findings.append(
            Finding(
                pass_name=PASS,
                severity="error",
                subject=self.subject,
                detail=detail,
                location=f"{_short(self.filename)}:{line}",
                rule=rule,
            )
        )

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in FORBIDDEN_NAMES:
            self._flag(
                node,
                f"references the memory substrate type {node.id}",
                "substrate-reference",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in FORBIDDEN_NAMES:
            self._flag(
                node,
                f"references the memory substrate type {node.attr}",
                "substrate-reference",
            )
        elif node.attr in FORBIDDEN_ATTRS:
            self._flag(
                node,
                f"accesses .{node.attr} — pierces the private register "
                f"numbering (views only expose read/write to automata)",
                "view-piercing",
            )
        self.generic_visit(node)


def check_class(cls: Type[ProcessAutomaton]) -> List[Finding]:
    """Static anonymity findings for one automaton class."""
    parsed = class_source_tree(cls)
    if parsed is None:
        return [
            Finding(
                pass_name=PASS,
                severity="info",
                subject=cls.__qualname__,
                detail="source unavailable — skipped",
                rule="skipped",
            )
        ]
    node, filename, first_line = parsed
    visitor = _AnonymityVisitor(cls.__qualname__, filename, first_line)
    visitor.visit(node)
    return visitor.findings


def run_anonymity_pass(
    classes: Optional[Iterable[Type[ProcessAutomaton]]] = None,
) -> List[Finding]:
    """Run the static anonymity linter (default: all shipped classes)."""
    target_classes: Sequence[Type[ProcessAutomaton]] = (
        list(classes) if classes is not None else shipped_automaton_classes()
    )
    findings: List[Finding] = []
    for cls in target_classes:
        findings.extend(check_class(cls))
    return findings


def run_anonymity_audit(
    target: LintTarget, max_steps: int = 50_000, seed: int = 1
) -> List[Finding]:
    """Runtime view-mediation audit of one small instance.

    Builds the system, installs the memory audit, runs a randomised
    schedule, and reports any access that bypassed the views.
    """
    from repro.memory.naming import RandomNaming
    from repro.runtime.adversary import RandomAdversary
    from repro.runtime.system import System

    algorithm = target.factory()
    naming = (
        RandomNaming(target.naming_seed) if target.naming_seed is not None else None
    )
    system = System(algorithm, target.inputs, naming=naming, record_trace=False)
    audit = system.memory.install_audit()
    system.run(RandomAdversary(seed), max_steps=max_steps)

    findings: List[Finding] = []
    for bypass in audit.bypasses:
        findings.append(
            Finding(
                pass_name=PASS,
                severity="error",
                subject=target.label,
                detail=(
                    f"runtime audit: {bypass.kind} of physical register "
                    f"{bypass.physical_index} bypassed the process views"
                ),
                location=f"run:{target.label}",
                rule="runtime-bypass",
            )
        )
    if audit.mediated_accesses == 0 and not audit.bypasses:
        findings.append(
            Finding(
                pass_name=PASS,
                severity="info",
                subject=target.label,
                detail="runtime audit observed no register accesses "
                "(schedule too short?)",
                location=f"run:{target.label}",
                rule="no-accesses",
            )
        )
    return findings


def run_anonymity_audits(
    targets: Optional[Sequence[LintTarget]] = None,
) -> List[Finding]:
    """Runtime audits over all registry targets (default registry)."""
    findings: List[Finding] = []
    for target in targets if targets is not None else lint_targets():
        findings.extend(run_anonymity_audit(target))
    return findings
