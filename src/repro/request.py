"""The unified run-request surface: one value describing "what to run".

Five entry points execute registry work — :func:`~repro.runtime.
exploration.explore`, :func:`~repro.verify.runner.verify_instance`,
:func:`~repro.analysis.experiments.sweep_problem`,
:func:`~repro.farm.orchestrator.run_farm` and the fuzz engine
(:func:`~repro.fuzz.engine.run_fuzz`) — and before this module each
grew its own drifting keyword list (backend here, kernel there,
max_states under two names).  A :class:`RunRequest` is the frozen value
they all consume instead:

* *what*: ``problem`` / ``instance`` / ``params`` — resolved through
  the problem registry by :func:`resolve_target`;
* *how*: ``kernel``, ``backend``, ``workers`` — the execution engine;
* *budgets*: ``max_steps`` (schedule length), ``max_states`` (distinct
  states);
* *determinism*: ``seed`` — the single RNG root for stochastic
  workloads (fuzzing); exhaustive walks ignore it by construction;
* *observability*: ``telemetry`` — a
  :class:`~repro.obs.telemetry.TelemetrySink`.

Every field defaults to ``None`` ("entry point's default"), so a
request only pins what the caller cares about.  Validation happens at
construction: an invalid kernel/backend/workers combination fails
before any work starts, with the same error text the CLI prints.

The pre-request keyword spellings on ``verify_instance`` and
``sweep_problem`` still work but warn with ``DeprecationWarning``
(messages pinned by ``tests/test_request.py``); they are removed in
PR 11.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import TelemetrySink
    from repro.problems.spec import ProblemInstance, ProblemSpec

__all__ = [
    "KERNELS",
    "BACKENDS",
    "RunRequest",
    "resolve_target",
    "deprecated_keywords_message",
]


def deprecated_keywords_message(func: str, keywords: Any) -> str:
    """The pinned DeprecationWarning text for legacy execution keywords."""
    listed = "/".join(f"{keyword}=" for keyword in keywords)
    return (
        f"{func}({listed}...) is deprecated; pass a RunRequest via "
        "request= (the keyword form will be removed in PR 11)"
    )

#: The step-kernel vocabulary every entry point shares.
KERNELS: Tuple[str, ...] = ("interpreted", "compiled")

#: The backend-name vocabulary (exploration backends + the sweep
#: executor's ``"process"`` spelling).
BACKENDS: Tuple[str, ...] = ("serial", "parallel", "process")


@dataclass(frozen=True)
class RunRequest:
    """One frozen description of a run (see module docstring).

    ``params`` accepts any mapping and is stored as a sorted item tuple
    so the request stays hashable; read it back via
    :meth:`params_dict`.  ``backend`` may be a vocabulary string or a
    live backend/executor instance (instances pass through unvalidated
    — they carry their own configuration).
    """

    problem: Optional[str] = None
    instance: Optional[str] = None
    params: Optional[Any] = None
    kernel: Optional[str] = None
    backend: Optional[Any] = None
    workers: Optional[int] = None
    max_steps: Optional[int] = None
    max_states: Optional[int] = None
    seed: Optional[int] = None
    telemetry: Optional["TelemetrySink"] = None

    def __post_init__(self) -> None:
        if self.params is not None and isinstance(self.params, Mapping):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        if self.kernel is not None and self.kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; "
                "expected 'interpreted' or 'compiled'"
            )
        if isinstance(self.backend, str) and self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; "
                "expected 'serial', 'parallel' or 'process'"
            )
        if self.kernel == "compiled" and isinstance(self.backend, str) and (
            self.backend != "serial"
        ):
            raise ConfigurationError(
                "kernel='compiled' is a drop-in replacement for the "
                f"serial backend; got backend {self.backend!r}"
            )
        for name in ("workers", "max_steps", "max_states"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ConfigurationError(
                    f"RunRequest.{name} must be a positive int, "
                    f"got {value!r}"
                )
        if self.seed is not None and not isinstance(self.seed, int):
            raise ConfigurationError(
                f"RunRequest.seed must be an int, got {self.seed!r}"
            )

    # -- accessors -----------------------------------------------------

    def params_dict(self) -> Optional[Dict[str, Any]]:
        """The ``params`` item tuple as a dict (``None`` when unset)."""
        if self.params is None:
            return None
        return dict(self.params)

    def replace(self, **changes: Any) -> "RunRequest":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def resolve(self) -> Tuple["ProblemSpec", "ProblemInstance"]:
        """Resolve ``problem``/``instance``/``params`` via the registry."""
        return resolve_target(self.problem, self.instance, self.params_dict())

    # -- keyword merging -----------------------------------------------

    def merged(
        self, name: str, explicit: Any, default: Any = None
    ) -> Any:
        """The effective value of one execution field.

        The request's field wins when set; an *explicit* keyword (one
        differing from the entry point's ``default``) that contradicts
        it is a configuration error, never a silent override.
        """
        value = getattr(self, name)
        if value is None:
            return explicit
        if (
            explicit is not None
            and explicit != default
            and explicit != value
        ):
            raise ConfigurationError(
                f"request= already carries {name}={value!r}; drop the "
                f"conflicting {name}={explicit!r} keyword"
            )
        return value


def resolve_target(
    problem: Optional[str],
    instance: Optional[str] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> Tuple["ProblemSpec", "ProblemInstance"]:
    """Resolve a (problem, instance, params) triple through the registry.

    ``instance`` may be

    * a registered instance *label* of ``problem``
      (``"figure-1-mutex(m=3)"``),
    * a problem *key* in its own right (``"figure-1-mutex-even-m"``) —
      how mutants hang off their parent problem on the CLI; the named
      spec replaces ``problem`` and its first instance is used, or
    * ``None`` — ``params`` (synthesizing an unregistered instance) or
      the spec's first declared instance.
    """
    from repro.errors import ReproError
    from repro.problems import get_problem
    from repro.problems.spec import ProblemInstance

    if problem is None:
        raise ConfigurationError(
            "a problem key is required to resolve a registry instance "
            "(RunRequest.problem / --problem)"
        )
    spec = get_problem(problem)
    if instance is not None:
        try:
            return spec, spec.instance(instance)
        except (ReproError, KeyError):
            pass
        try:
            other = get_problem(instance)
        except (ReproError, KeyError):
            raise ConfigurationError(
                f"{instance!r} is neither an instance label of "
                f"{spec.key!r} (known: "
                f"{[inst.label for inst in spec.instances]}) nor a "
                "problem key"
            ) from None
        if not other.instances:
            raise ConfigurationError(
                f"problem {other.key!r} declares no instances"
            )
        return other, other.instances[0]
    if params is not None:
        rendered = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        return spec, ProblemInstance(
            label=f"{spec.key}({rendered})",
            params=tuple(sorted(params.items())),
            roles=("verify",),
        )
    if not spec.instances:
        raise ConfigurationError(
            f"problem {spec.key!r} declares no instances; pass params"
        )
    return spec, spec.instances[0]
