"""Tests for shared type validation helpers."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.types import (
    require,
    validate_distinct_ids,
    validate_process_id,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never shown")

    def test_raises_configuration_error_by_default(self):
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_custom_error_class(self):
        with pytest.raises(ProtocolError):
            require(False, "broken", ProtocolError)


class TestValidateProcessId:
    def test_accepts_positive_ints(self):
        assert validate_process_id(1) == 1
        assert validate_process_id(10**12) == 10**12

    def test_rejects_zero(self):
        # 0 is the registers' initial known state in all three algorithms.
        with pytest.raises(ConfigurationError):
            validate_process_id(0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validate_process_id(-5)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            validate_process_id(True)

    def test_rejects_non_int(self):
        with pytest.raises(ConfigurationError):
            validate_process_id("101")


class TestValidateDistinctIds:
    def test_accepts_distinct(self):
        assert validate_distinct_ids([101, 103]) == (101, 103)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            validate_distinct_ids([101, 101])

    def test_rejects_invalid_member(self):
        with pytest.raises(ConfigurationError):
            validate_distinct_ids([101, 0])

    def test_ids_need_not_be_contiguous(self):
        # §2: "It is not assumed that the identifiers are taken from the
        # set {1..n}."
        assert validate_distinct_ids([7, 1000003]) == (7, 1000003)
