"""Cell-level retry budget tests.

``error`` is a deliberate terminal state (PR 8), distinct from a killed
worker's ``claimed``.  The retry budget (``max_attempts``) carves out
the transient-failure case: a failed cell with attempts to spare goes
back to ``pending`` — live, during the drain, and at ``--resume`` time —
and because cell execution is deterministic, a farm that needed retries
is byte-identical to one that never failed.
"""

import pytest

import repro.farm.cells
from repro.__main__ import main
from repro.farm import create_farm, drain_farm, farm_result, resume_farm


def make_config(**overrides):
    config = {
        "problem": "figure-1-mutex",
        "instance": "figure-1-mutex(m=3)",
        "namings": [{"type": "identity"}],
        "adversaries": [{"type": "random", "seed": s} for s in (1, 2, 3)],
        "max_steps": 2_000,
        "retain_graph": False,
    }
    config.update(overrides)
    return config


class Transient(RuntimeError):
    """A failure that would succeed on retry (OOM kill, disk hiccup)."""


@pytest.fixture
def flaky(monkeypatch):
    """Make ``execute_cell`` raise on selected (index, attempt) pairs.

    Returns a ``schedule`` dict test code fills in: ``schedule[idx] = n``
    makes cell ``idx`` fail its first ``n`` executions.  Call counts per
    cell land in ``calls``.
    """
    real = repro.farm.cells.execute_cell
    schedule = {}
    calls = {}

    def execute(config, cell, graphs_dir=None):
        calls[cell.index] = calls.get(cell.index, 0) + 1
        if calls[cell.index] <= schedule.get(cell.index, 0):
            raise Transient(f"cell {cell.index} transient failure")
        return real(config, cell, graphs_dir=graphs_dir)

    monkeypatch.setattr(repro.farm.cells, "execute_cell", execute)
    return schedule, calls


def reference_rows(tmp_path, config):
    ref = tmp_path / "reference"
    create_farm(ref, config)
    return drain_farm(ref).rows


class TestLiveRetry:
    def test_transient_failure_retried_within_drain(self, tmp_path, flaky):
        config = make_config()
        schedule, calls = flaky
        ref_rows = reference_rows(tmp_path, config)
        calls.clear()  # reference ran under the same patch

        schedule[1] = 1  # cell 1 fails once, succeeds on retry
        farm = tmp_path / "farm"
        create_farm(farm, config)
        result = drain_farm(farm, max_attempts=2)

        assert result.complete
        assert calls[1] == 2
        # attempts counts claims: the retried cell was claimed twice
        assert [row.attempts for row in result.rows] == [1, 2, 1]
        # determinism: the retried farm matches the never-failed one
        assert [row.result for row in result.rows] == [
            row.result for row in ref_rows
        ]

    def test_budget_from_grid_config(self, tmp_path, flaky):
        schedule, calls = flaky
        schedule[0] = 1
        farm = tmp_path / "farm"
        create_farm(farm, make_config(max_attempts=2))
        result = drain_farm(farm)  # no explicit budget: config's applies
        assert result.complete
        assert calls[0] == 2

    def test_default_budget_keeps_error_terminal(self, tmp_path, flaky):
        schedule, calls = flaky
        schedule[2] = 1
        farm = tmp_path / "farm"
        create_farm(farm, make_config())
        result = drain_farm(farm)
        assert result.counts["error"] == 1
        assert calls[2] == 1
        assert "Transient" in result.errors[0].error

    def test_exhausted_budget_settles_in_error(self, tmp_path, flaky):
        schedule, calls = flaky
        schedule[1] = 99  # fails every time
        farm = tmp_path / "farm"
        create_farm(farm, make_config())
        result = drain_farm(farm, max_attempts=3)
        assert result.counts == {
            "done": 2, "pending": 0, "claimed": 0, "error": 1,
        }
        assert calls[1] == 3
        assert result.errors[0].attempts == 3


class TestResumeRetry:
    def test_resume_re_pends_error_cells_within_budget(self, tmp_path, flaky):
        config = make_config()
        schedule, calls = flaky
        ref_rows = reference_rows(tmp_path, config)
        calls.clear()  # reference ran under the same patch

        schedule[0] = 1
        farm = tmp_path / "farm"
        create_farm(farm, config)
        assert drain_farm(farm).counts["error"] == 1  # budget 1: terminal

        # a later resume grants the budget; the error cell re-pends
        schedule.clear()
        assert resume_farm(farm, max_attempts=2) == 1
        final = drain_farm(farm, max_attempts=2)
        assert final.complete
        assert [row.result for row in final.rows] == [
            row.result for row in ref_rows
        ]
        assert final.rows[0].attempts == 2

    def test_resume_without_budget_reclaims_nothing(self, tmp_path, flaky):
        schedule, _ = flaky
        schedule[0] = 1
        farm = tmp_path / "farm"
        create_farm(farm, make_config())
        drain_farm(farm)
        assert resume_farm(farm) == 0
        assert farm_result(farm).counts["error"] == 1

    def test_resume_skips_cells_with_exhausted_attempts(self, tmp_path, flaky):
        schedule, _ = flaky
        schedule[0] = 99
        farm = tmp_path / "farm"
        create_farm(farm, make_config())
        drain_farm(farm, max_attempts=2)  # two failed attempts recorded
        assert resume_farm(farm, max_attempts=2) == 0
        assert farm_result(farm).errors[0].attempts == 2


class TestSweepCliRetry:
    def test_resume_with_max_attempts_retries_error_cells(
        self, tmp_path, flaky, capsys
    ):
        out = tmp_path / "farm"
        code = main([
            "sweep", "--problem", "figure-1-mutex",
            "--instance", "figure-1-mutex(m=3)",
            "--namings", "identity",
            "--adversaries", "random:1,random:2",
            "--max-steps", "2000",
            "--out", str(out),
        ])
        schedule, calls = flaky
        capsys.readouterr()
        assert code == 0  # schedule still empty: clean first pass
        calls.clear()

        # poison a second farm with an error row, then resume with budget
        schedule[1] = 1
        farm2 = tmp_path / "farm2"
        create_farm(farm2, make_config())
        drain_farm(farm2)
        assert farm_result(farm2).counts["error"] == 1
        schedule.clear()
        code = main(["sweep", "--resume", str(farm2), "--max-attempts", "2"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "reclaimed 1 cell(s)" in captured
        assert farm_result(farm2).complete
