"""Differential tests: the disk graph store vs the in-RAM StateGraph.

The load-bearing property is byte-identity —
``DiskStateGraph.to_bytes()`` must equal the source graph's
``StateGraph.to_bytes()`` exactly, for complete and truncated walks
alike — because verification digests and the farm's resume-identity
guarantee are both defined over those bytes.
"""

import hashlib

import pytest

from repro.errors import FarmError
from repro.farm import (
    DiskGraphWriter,
    DiskStateGraph,
    load_state_graph,
    write_state_graph,
)
from repro.problems import get_problem
from repro.runtime.exploration import explore, mutual_exclusion_invariant


def retained_graph(max_states=None):
    spec = get_problem("figure-1-mutex")
    instance = spec.instance("figure-1-mutex(m=3)")
    kwargs = {"max_states": max_states} if max_states else {}
    result = explore(
        spec.system(instance),
        mutual_exclusion_invariant,
        retain_graph=True,
        **kwargs,
    )
    assert result.graph is not None
    return result.graph


@pytest.fixture(scope="module")
def graph():
    return retained_graph()


@pytest.fixture()
def disk(graph, tmp_path):
    write_state_graph(graph, tmp_path / "store")
    with load_state_graph(tmp_path / "store") as handle:
        yield handle


class TestByteIdentity:
    def test_complete_graph_round_trips_byte_identically(self, graph, disk):
        assert disk.to_bytes() == graph.to_bytes()

    def test_digest_matches_sha256_of_source_bytes(self, graph, disk):
        assert disk.digest() == hashlib.sha256(graph.to_bytes()).hexdigest()

    def test_truncated_graph_round_trips_byte_identically(self, tmp_path):
        truncated = retained_graph(max_states=100)
        assert not truncated.complete
        write_state_graph(truncated, tmp_path / "t")
        with load_state_graph(tmp_path / "t") as handle:
            assert not handle.complete
            assert handle.to_bytes() == truncated.to_bytes()


class TestReadApi:
    def test_counts_and_completeness(self, graph, disk):
        assert len(disk) == len(graph)
        assert disk.edge_count == graph.edge_count
        assert disk.complete is True
        assert disk.initial == graph.initial

    def test_iter_nodes_is_sorted_and_equal(self, graph, disk):
        assert list(disk.iter_nodes()) == sorted(graph.nodes)

    def test_successors_agree_on_every_node(self, graph, disk):
        for key in graph.iter_nodes():
            assert disk.successors(key) == graph.successors(key)

    def test_successors_of_unknown_key_empty(self, disk, graph):
        assert disk.successors(b"\x00" * len(graph.initial)) == ()

    def test_contains(self, graph, disk):
        assert graph.initial in disk
        assert b"\xff" * len(graph.initial) not in disk

    def test_expanded_flags(self, graph, disk):
        for key in graph.iter_nodes():
            assert disk.expanded(key) == (key in graph.edges)


class TestWriterContract:
    def test_key_length_enforced(self, tmp_path):
        writer = DiskGraphWriter(tmp_path / "s", key_len=4)
        writer.add_node(b"\x01\x02\x03\x04")
        with pytest.raises(FarmError, match="key_len"):
            writer.add_node(b"\x01\x02")

    def test_non_contiguous_edges_rejected(self, tmp_path):
        writer = DiskGraphWriter(tmp_path / "s", key_len=1)
        writer.add_edge(b"a", 11, b"b")
        writer.add_edge(b"b", 11, b"a")
        with pytest.raises(FarmError, match="non-contiguously"):
            writer.add_edge(b"a", 13, b"b")

    def test_finalize_requires_known_initial(self, tmp_path):
        writer = DiskGraphWriter(tmp_path / "s", key_len=1)
        writer.add_node(b"a")
        with pytest.raises(FarmError, match="initial"):
            writer.finalize(b"z", complete=True)

    def test_double_finalize_rejected(self, tmp_path):
        writer = DiskGraphWriter(tmp_path / "s", key_len=1)
        writer.add_node(b"a")
        writer.finalize(b"a", complete=True)
        with pytest.raises(FarmError, match="twice"):
            writer.finalize(b"a", complete=True)

    def test_unfinalized_store_is_unreadable(self, tmp_path):
        writer = DiskGraphWriter(tmp_path / "s", key_len=1)
        writer.add_node(b"a")
        # no finalize: the directory must read as "not a store", which
        # is what a worker killed mid-verify-cell leaves behind.
        with pytest.raises(FarmError, match="finalize"):
            DiskStateGraph(tmp_path / "s")

    def test_single_node_graph(self, tmp_path):
        writer = DiskGraphWriter(tmp_path / "s", key_len=2)
        writer.add_node(b"aa")
        writer.mark_expanded(b"aa")  # terminal but expanded
        writer.finalize(b"aa", complete=True)
        with load_state_graph(tmp_path / "s") as handle:
            assert len(handle) == 1
            assert handle.edge_count == 0
            assert handle.successors(b"aa") == ()
            assert handle.expanded(b"aa")
