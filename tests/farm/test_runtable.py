"""Claim-protocol tests for the sweep farm's run tables.

Both implementations (in-memory and sqlite) must speak the same
protocol: pending cells are claimed in index order, finish/fail demand
a prior claim, resume returns only stale claims to pending, and two
claimants over one sqlite file never hand out the same cell twice.
"""

import pytest

from repro.errors import FarmError
from repro.farm import Cell, MemoryRunTable, SqliteRunTable


def make_cells(n=4):
    return [Cell(index=k, kind="run", payload={"k": k}) for k in range(n)]


def open_pair(tmp_path):
    """A sqlite table plus a second independent connection to it."""
    path = tmp_path / "runs.sqlite"
    table = SqliteRunTable.create(path, make_cells(), meta={"grid": {"g": 1}})
    return table, SqliteRunTable.open(path)


@pytest.fixture(params=["memory", "sqlite"])
def table(request, tmp_path):
    if request.param == "memory":
        yield MemoryRunTable(make_cells(), meta={"grid": {"g": 1}})
    else:
        handle = SqliteRunTable.create(
            tmp_path / "runs.sqlite", make_cells(), meta={"grid": {"g": 1}}
        )
        yield handle
        handle.close()


class TestProtocol:
    def test_claims_come_in_index_order(self, table):
        indices = []
        while True:
            cell = table.claim("w0")
            if cell is None:
                break
            indices.append(cell.index)
        assert indices == [0, 1, 2, 3]

    def test_claim_preserves_payload_and_kind(self, table):
        cell = table.claim("w0")
        assert cell.kind == "run"
        assert cell.payload == {"k": 0}

    def test_lifecycle_counts(self, table):
        assert table.counts() == {"pending": 4, "claimed": 0, "done": 0, "error": 0}
        cell = table.claim("w0")
        assert table.counts()["claimed"] == 1
        table.finish(cell.index, {"verdict": "ok"})
        assert table.counts()["done"] == 1
        cell = table.claim("w0")
        table.fail(cell.index, "ValueError: boom")
        counts = table.counts()
        assert counts == {"pending": 2, "claimed": 0, "done": 1, "error": 1}

    def test_finish_requires_claim(self, table):
        with pytest.raises(FarmError, match="not 'claimed'"):
            table.finish(0, {"verdict": "ok"})

    def test_double_finish_rejected(self, table):
        cell = table.claim("w0")
        table.finish(cell.index, {"verdict": "ok"})
        with pytest.raises(FarmError, match="not 'claimed'"):
            table.finish(cell.index, {"verdict": "ok"})

    def test_fail_requires_claim(self, table):
        with pytest.raises(FarmError, match="not 'claimed'"):
            table.fail(0, "boom")

    def test_reset_claims_touches_only_claimed(self, table):
        done = table.claim("w0")
        table.finish(done.index, {"verdict": "ok"})
        stale = table.claim("w0")
        assert table.reset_claims() == 1
        counts = table.counts()
        assert counts["pending"] == 3
        assert counts["done"] == 1
        # the reclaimed cell is claimable again, attempts accumulate
        again = table.claim("w1")
        assert again.index == stale.index
        assert table.attempts_of(again.index) == 2

    def test_rows_snapshot(self, table):
        cell = table.claim("w7")
        table.finish(cell.index, {"verdict": "ok"})
        rows = table.rows()
        assert [row.index for row in rows] == [0, 1, 2, 3]
        assert rows[0].status == "done"
        assert rows[0].worker == "w7"
        assert rows[0].result == {"verdict": "ok"}
        assert rows[0].finished_at is not None
        assert rows[1].status == "pending"

    def test_meta_round_trip(self, table):
        assert table.meta() == {"grid": {"g": 1}}

    def test_drained_table_claims_none(self, table):
        for _ in range(4):
            table.finish(table.claim("w0").index, {})
        assert table.claim("w0") is None


class TestSqliteSpecifics:
    def test_create_refuses_existing(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        SqliteRunTable.create(path, make_cells()).close()
        with pytest.raises(FarmError, match="already exists"):
            SqliteRunTable.create(path, make_cells())

    def test_open_refuses_missing(self, tmp_path):
        with pytest.raises(FarmError, match="no run table"):
            SqliteRunTable.open(tmp_path / "nope.sqlite")

    def test_two_connections_claim_disjoint_cells(self, tmp_path):
        a, b = open_pair(tmp_path)
        claimed = []
        # interleave claims from two independent connections — the
        # UPDATE ... WHERE status='pending' transaction must hand every
        # cell out exactly once across both.
        for _ in range(2):
            claimed.append(a.claim("a"))
            claimed.append(b.claim("b"))
        assert a.claim("a") is None and b.claim("b") is None
        indices = sorted(cell.index for cell in claimed)
        assert indices == [0, 1, 2, 3]
        a.close()
        b.close()

    def test_finish_visible_across_connections(self, tmp_path):
        a, b = open_pair(tmp_path)
        cell = a.claim("a")
        a.finish(cell.index, {"verdict": "ok", "events": 9})
        row = next(r for r in b.rows() if r.index == cell.index)
        assert row.status == "done"
        assert row.result == {"verdict": "ok", "events": 9}
        a.close()
        b.close()

    def test_results_survive_reopen(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        table = SqliteRunTable.create(path, make_cells())
        table.finish(table.claim("w0").index, {"verdict": "ok"})
        table.close()
        reopened = SqliteRunTable.open(path)
        assert reopened.counts()["done"] == 1
        assert reopened.rows()[0].result == {"verdict": "ok"}
        reopened.close()

    def test_json_payload_round_trips(self, tmp_path):
        payload = {"naming": {"type": "random", "seed": 3}, "deep": [1, {"x": None}]}
        table = SqliteRunTable.create(
            tmp_path / "runs.sqlite", [Cell(index=0, kind="run", payload=payload)]
        )
        assert table.claim("w0").payload == payload
        table.close()
