"""Farm orchestration tests: drain, crash, resume, multi-process, CLI.

The acceptance property pinned here is resume identity: a farm killed
mid-cell (simulated by a fault injector that raises *after* the claim
transaction commits — byte-for-byte the state SIGKILL leaves) and
restarted with resume produces per-cell results, manifests and retained
graph digests identical to an uninterrupted run, with no cell executed
twice.
"""

import pytest

from repro.__main__ import main
from repro.errors import FarmError
from repro.farm import (
    FarmResult,
    create_farm,
    drain_farm,
    farm_result,
    grid_cells,
    is_farm_dir,
    load_state_graph,
    resume_farm,
    run_farm,
)
from repro.obs.manifest import load_manifests


def make_config(retain_graph=False, adversary_seeds=(1, 2, 3)):
    return {
        "problem": "figure-1-mutex",
        "instance": "figure-1-mutex(m=3)",
        "namings": [{"type": "identity"}, {"type": "random", "seed": 1}],
        "adversaries": [
            {"type": "random", "seed": seed} for seed in adversary_seeds
        ],
        "max_steps": 2_000,
        "retain_graph": retain_graph,
    }


def reference_rows(tmp_path, config):
    """Rows of an uninterrupted serial farm over ``config``."""
    ref = tmp_path / "reference"
    create_farm(ref, config)
    return drain_farm(ref).rows, ref


class Killed(RuntimeError):
    """Stands in for SIGKILL: raised after the claim commits."""


class TestGrid:
    def test_grid_is_naming_major_and_deterministic(self):
        config = make_config(retain_graph=True)
        cells = grid_cells(config)
        assert [cell.kind for cell in cells] == ["run"] * 6 + ["verify"]
        assert [cell.index for cell in cells] == list(range(7))
        assert cells[0].payload["naming"] == {"type": "identity"}
        assert cells[0].payload["adversary"] == {"type": "random", "seed": 1}
        assert cells[3].payload["naming"] == {"type": "random", "seed": 1}
        assert grid_cells(config) == cells

    def test_empty_grid_rejected(self, tmp_path):
        config = make_config()
        config["namings"] = []
        with pytest.raises(FarmError, match="zero cells"):
            create_farm(tmp_path / "farm", config)


class TestDrain:
    def test_drain_completes_every_cell(self, tmp_path):
        config = make_config()
        create_farm(tmp_path / "farm", config)
        result = drain_farm(tmp_path / "farm")
        assert result.complete
        assert result.counts["done"] == 6
        assert all(row.result["verdict"] == "ok" for row in result.rows)
        assert all(row.attempts == 1 for row in result.rows)

    def test_results_deterministic_across_farms(self, tmp_path):
        config = make_config()
        ref_rows, _ = reference_rows(tmp_path, config)
        create_farm(tmp_path / "again", config)
        again = drain_farm(tmp_path / "again")
        assert [row.result for row in again.rows] == [
            row.result for row in ref_rows
        ]

    def test_manifests_one_line_per_done_cell(self, tmp_path):
        config = make_config()
        create_farm(tmp_path / "farm", config)
        drain_farm(tmp_path / "farm", worker="w0")
        manifests = load_manifests(tmp_path / "farm" / "manifests-w0.ndjson")
        assert len(manifests) == 6
        assert {m.kind for m in manifests} == {"farm-cell"}
        assert sorted(m.parameters["cell"] for m in manifests) == list(range(6))

    def test_broken_cell_goes_to_error_and_drain_continues(self, tmp_path):
        config = make_config()
        config["max_steps"] = "bogus"  # TypeError inside each cell's run
        create_farm(tmp_path / "farm", config)
        result = drain_farm(tmp_path / "farm")
        assert not result.complete
        assert result.counts["error"] == 6
        assert all("Error" in row.error or ":" in row.error for row in result.errors)
        # error is terminal: resume reclaims nothing and retries nothing
        assert resume_farm(tmp_path / "farm") == 0
        assert drain_farm(tmp_path / "farm").counts["error"] == 6

    def test_verify_cell_persists_graph_store(self, tmp_path):
        config = make_config(retain_graph=True, adversary_seeds=(1,))
        create_farm(tmp_path / "farm", config)
        result = drain_farm(tmp_path / "farm")
        verify_row = result.rows[-1]
        assert verify_row.kind == "verify"
        assert verify_row.result["verdict"] == "verified"
        store = tmp_path / "farm" / "graphs" / f"cell-{verify_row.index:05d}"
        with load_state_graph(store) as disk:
            assert disk.digest() == verify_row.result["graph_sha256"]
            assert disk.edge_count == verify_row.result["retained_edges"]


class TestCrashResume:
    def test_killed_cell_stays_claimed_then_resume_matches_reference(
        self, tmp_path
    ):
        config = make_config(retain_graph=True)
        ref_rows, _ = reference_rows(tmp_path, config)

        farm = tmp_path / "farm"
        create_farm(farm, config)

        def kill_on_cell_3(cell):
            if cell.index == 3:
                raise Killed("worker killed after claim")

        with pytest.raises(Killed):
            drain_farm(farm, worker="w0", fault_injector=kill_on_cell_3)

        mid = farm_result(farm)
        assert mid.counts == {"done": 3, "claimed": 1, "pending": 3, "error": 0}
        claimed = next(row for row in mid.rows if row.status == "claimed")
        assert claimed.index == 3

        # resume: exactly the one stale claim is reclaimed, then the
        # farm finishes with results identical to the uninterrupted run
        assert resume_farm(farm) == 1
        final = drain_farm(farm, worker="w0")
        assert final.complete
        assert [row.result for row in final.rows] == [
            row.result for row in ref_rows
        ]

        # the reclaimed cell ran exactly twice-claimed, once-executed;
        # every other cell was claimed once — no cell executed twice
        assert [row.attempts for row in final.rows] == [1, 1, 1, 2, 1, 1, 1]
        manifests = load_manifests(farm / "manifests-w0.ndjson")
        cells_seen = [m.parameters["cell"] for m in manifests]
        assert sorted(cells_seen) == list(range(7))
        assert len(cells_seen) == len(set(cells_seen))

    def test_reclaimed_cell_manifest_identical_to_reference(self, tmp_path):
        config = make_config()
        _, ref_dir = reference_rows(tmp_path, config)

        farm = tmp_path / "farm"
        create_farm(farm, config)

        def kill_on_cell_2(cell):
            if cell.index == 2:
                raise Killed()

        with pytest.raises(Killed):
            drain_farm(farm, worker="w0", fault_injector=kill_on_cell_2)
        resume_farm(farm)
        drain_farm(farm, worker="w0")

        def deterministic(manifest):
            # host/git/created_at vary per run; worker/attempt are the
            # audit trail of the crash itself.  Everything else —
            # the cell's identity and its entire outcome — must match.
            params = {
                k: v
                for k, v in manifest.parameters.items()
                if k not in ("worker", "attempt")
            }
            return (manifest.kind, manifest.algorithm, manifest.naming,
                    manifest.adversary, params, manifest.outcome)

        ref = {
            m.parameters["cell"]: deterministic(m)
            for m in load_manifests(ref_dir / "manifests-w0.ndjson")
        }
        resumed = {
            m.parameters["cell"]: deterministic(m)
            for m in load_manifests(farm / "manifests-w0.ndjson")
        }
        assert resumed == ref
        reclaimed = next(
            m for m in load_manifests(farm / "manifests-w0.ndjson")
            if m.parameters["cell"] == 2
        )
        assert reclaimed.parameters["attempt"] == 2

    def test_resumed_verify_cell_graph_digest_matches_reference(self, tmp_path):
        config = make_config(retain_graph=True, adversary_seeds=(1,))
        ref_rows, ref_dir = reference_rows(tmp_path, config)
        verify_index = len(ref_rows) - 1

        farm = tmp_path / "farm"
        create_farm(farm, config)

        def kill_on_verify(cell):
            if cell.kind == "verify":
                raise Killed()

        with pytest.raises(Killed):
            drain_farm(farm, fault_injector=kill_on_verify)
        resume_farm(farm)
        final = drain_farm(farm)

        assert (
            final.rows[verify_index].result
            == ref_rows[verify_index].result
        )
        store = farm / "graphs" / f"cell-{verify_index:05d}"
        ref_store = ref_dir / "graphs" / f"cell-{verify_index:05d}"
        with load_state_graph(store) as a, load_state_graph(ref_store) as b:
            assert a.to_bytes() == b.to_bytes()


class TestMultiProcess:
    def test_two_workers_drain_identically_to_serial(self, tmp_path):
        config = make_config()
        ref_rows, _ = reference_rows(tmp_path, config)
        farm = tmp_path / "farm"
        create_farm(farm, config)
        result = run_farm(farm, workers=2)
        assert result.complete
        assert [row.result for row in result.rows] == [
            row.result for row in ref_rows
        ]
        # every done cell appears in exactly one worker's manifest stream
        cells = []
        for stream in sorted(farm.glob("manifests-*.ndjson")):
            cells.extend(
                m.parameters["cell"] for m in load_manifests(stream)
            )
        assert sorted(cells) == list(range(6))

    def test_fault_injector_is_single_process_only(self, tmp_path):
        create_farm(tmp_path / "farm", make_config())
        with pytest.raises(FarmError, match="single-process"):
            run_farm(tmp_path / "farm", workers=2, fault_injector=lambda c: None)


class TestSweepDerivation:
    def test_sweep_result_re_derived_from_farm_result(self):
        from repro.analysis.experiments import sweep
        from repro.core.mutex import AnonymousMutex
        from repro.memory.naming import IdentityNaming
        from repro.runtime.adversary import RandomAdversary
        from repro.spec.mutex_spec import MutualExclusionChecker

        result = sweep(
            lambda: AnonymousMutex(m=3, cs_visits=1),
            [11, 13],
            [IdentityNaming()],
            [RandomAdversary(1), RandomAdversary(2)],
            lambda: [MutualExclusionChecker()],
            max_steps=2_000,
        )
        assert isinstance(result.farm, FarmResult)
        assert result.farm.complete
        assert len(result.farm.rows) == 2
        assert [row.result for row in result.farm.rows] == result.records
        rederived = result.farm.to_sweep_result()
        assert rederived.records == result.records
        assert rederived.algorithm == result.algorithm


class TestSweepCli:
    def test_out_then_resume_round_trip(self, tmp_path, capsys):
        out = tmp_path / "farm"
        code = main([
            "sweep", "--problem", "figure-1-mutex",
            "--instance", "figure-1-mutex(m=3)",
            "--namings", "identity",
            "--adversaries", "random:1,random:2",
            "--max-steps", "2000",
            "--out", str(out),
        ])
        assert code == 0
        assert is_farm_dir(out)
        assert "2 done" in capsys.readouterr().out
        # resuming a completed farm is a clean no-op
        assert main(["sweep", "--resume", str(out)]) == 0
        assert "0 cell(s) to run" in capsys.readouterr().out

    def test_in_memory_one_shot(self, capsys):
        code = main([
            "sweep", "--problem", "figure-1-mutex",
            "--param", "m=3",
            "--namings", "identity",
            "--adversaries", "round-robin",
            "--max-steps", "2000",
        ])
        assert code == 0
        assert "1 done" in capsys.readouterr().out

    def test_out_refuses_existing_farm(self, tmp_path, capsys):
        out = tmp_path / "farm"
        create_farm(out, make_config())
        with pytest.raises(SystemExit):
            main(["sweep", "--problem", "figure-1-mutex", "--out", str(out)])
        assert "use --resume" in capsys.readouterr().err

    def test_resume_refuses_non_farm_dir(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--resume", str(tmp_path)])
        assert "no run table" in capsys.readouterr().err

    def test_workers_require_out(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--problem", "figure-1-mutex", "--workers", "2"])
        assert "--out" in capsys.readouterr().err

    def test_report_on_farm_dir(self, tmp_path, capsys):
        out = tmp_path / "farm"
        create_farm(out, make_config(adversary_seeds=(1,)))
        drain_farm(out)
        assert main(["report", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "sweep farm" in captured
        assert "2 done" in captured
        assert "farm-cell" in captured

    def test_report_tolerates_truncated_manifest_tail(self, tmp_path, capsys):
        out = tmp_path / "farm"
        create_farm(out, make_config(adversary_seeds=(1,)))
        drain_farm(out, worker="w0")
        stream = out / "manifests-w0.ndjson"
        stream.write_text(stream.read_text()[:-40])  # torn final line
        assert main(["report", str(out)]) == 0
        captured = capsys.readouterr()
        assert "truncated final line" in captured.err
        assert "1 run(s)" in captured.out
