"""SIGTERM mid-run must not leak shared-memory segments.

The work-stealing backend parks its visited table in a named
``/dev/shm`` segment (``repro_vt_*``).  A farm worker or CI runner
killing the whole process group with SIGTERM is the normal way these
runs die (the crash-resume suite next door exercises the claim-table
side of that story); the coordinator's handler must turn the signal
into an orderly SystemExit so its ``finally`` unlinks the segment —
leaked segments are permanent until reboot.  SIGKILL cannot be caught;
that documented leak is the resource tracker's to clean.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runtime.visited import SEGMENT_PREFIX

SHM_DIR = Path("/dev/shm")

#: Run a walk big enough (mutex m=9, ~500k states) to still be going
#: when the kill lands; the instance itself is irrelevant.
CHILD_SCRIPT = """
from repro.core.mutex import AnonymousMutex
from repro.runtime.backends import ParallelBackend
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System

system = System(AnonymousMutex(m=9, cs_visits=1), (101, 103),
                record_trace=False)
print("started", flush=True)
explore(system, mutual_exclusion_invariant,
        canonicalizer=TrivialCanonicalizer(system.scheduler),
        backend=ParallelBackend(workers=2),
        max_states=500_000, max_depth=1_000_000)
print("finished", flush=True)
"""


def shm_segments():
    return {p.name for p in SHM_DIR.glob(SEGMENT_PREFIX + "*")}


@pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="no /dev/shm on this platform"
)
def test_sigterm_unlinks_all_segments(tmp_path):
    before = shm_segments()
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        start_new_session=True,  # own process group, like a farm worker
    )
    try:
        assert proc.stdout is not None
        assert proc.stdout.readline().strip() == "started"
        # Wait for the run to actually park its table in /dev/shm.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            created = shm_segments() - before
            if created:
                break
            if proc.poll() is not None:
                pytest.fail("run finished before a segment appeared")
            time.sleep(0.02)
        else:
            pytest.fail("no repro_vt_ segment appeared within 30s")

        os.killpg(proc.pid, signal.SIGTERM)
        proc.wait(timeout=30)
        # The handler raises SystemExit(143); a raw signal death (-15)
        # would mean the finally never ran — the leak assert below
        # would catch it, but the exit code states the intent.
        assert proc.returncode == 143, proc.returncode

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leaked = shm_segments() - before
            if not leaked:
                break
            time.sleep(0.05)
        assert shm_segments() - before == set(), (
            f"leaked /dev/shm segments: {sorted(shm_segments() - before)}"
        )
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        for name in shm_segments() - before:
            (SHM_DIR / name).unlink(missing_ok=True)
