"""Tests for the ablation variants (thresholds exposed)."""

import pytest

from repro.errors import ConfigurationError
from repro.extensions.variants import LenientConsensus, ThresholdMutex
from repro.runtime.adversary import FixedScheduleAdversary, RandomAdversary
from repro.runtime.exploration import (
    agreement_invariant,
    explore,
    mutual_exclusion_invariant,
)
from repro.runtime.system import System
from repro.spec.consensus_spec import AgreementChecker
from repro.spec.mutex_spec import MutualExclusionChecker

from tests.conftest import pids


def run_to_cycle_or_completion(system, schedule_prefix, max_steps=5_000):
    """Drive a fixed prefix, then round-robin with state-cycle detection.

    Returns "completed" when all processes halt, or "livelock" when the
    global state repeats (the run provably loops forever).
    """
    scheduler = system.scheduler
    for pid in schedule_prefix:
        scheduler.step(pid)
    seen = {scheduler.capture_state()}
    order = list(scheduler.pids)
    cursor = 0
    for _ in range(max_steps):
        enabled = scheduler.enabled_pids()
        if not enabled:
            return "completed"
        while order[cursor % len(order)] not in enabled:
            cursor += 1
        scheduler.step(order[cursor % len(order)])
        cursor += 1
        state = scheduler.capture_state()
        if state in seen:
            return "livelock"
        seen.add(state)
    return "undetermined"


class TestThresholdMutex:
    def test_paper_threshold_reproduces_fig1(self):
        # t = ceil(m/2) = 2 on m=3 is exactly Figure 1.
        system = System(
            ThresholdMutex(m=3, threshold=2, cs_visits=2), pids(2),
            record_trace=False,
        )
        result = explore(system, mutual_exclusion_invariant, max_states=500_000)
        assert result.complete and result.ok and result.stuck_states == 0

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdMutex(m=3, threshold=0).automaton_for(101)
        with pytest.raises(ConfigurationError):
            ThresholdMutex(m=3, threshold=4).automaton_for(101)

    def test_mutual_exclusion_safe_for_any_threshold(self):
        # Entry still requires all m registers, so ME is threshold-proof.
        for t in (1, 2, 3):
            system = System(
                ThresholdMutex(m=3, threshold=t, cs_visits=1), pids(2),
                record_trace=False,
            )
            result = explore(
                system, mutual_exclusion_invariant, max_states=500_000
            )
            assert result.ok, (t, result.violation)

    def test_stubborn_threshold_1_livelocks_on_a_split(self):
        """t=1: neither process ever gives up.  Drive the 2-1 register
        split deterministically, then watch the state cycle."""
        p1, p2 = pids(2)
        system = System(ThresholdMutex(m=3, threshold=1), (p1, p2))
        # p1 claims registers 0 and 1; p2 claims register 2.
        prefix = [p1, p1, p1, p1]          # read r0, write r0, read r1, write r1
        prefix += [p2, p2, p2, p2, p2, p2]  # read r0 (taken), read r1 (taken), read r2, write r2, ...
        outcome = run_to_cycle_or_completion(system, prefix[:8])
        assert outcome == "livelock"

    def test_paper_threshold_completes_on_the_same_split(self):
        """Control: t=2 resolves the identical 2-1 split (the loser
        cleans up and waits), showing ceil(m/2) is what buys progress."""
        p1, p2 = pids(2)
        system = System(ThresholdMutex(m=3, threshold=2), (p1, p2))
        prefix = [p1, p1, p1, p1, p2, p2, p2, p2]
        outcome = run_to_cycle_or_completion(system, prefix)
        assert outcome == "completed"

    def test_skittish_threshold_m_livelocks_in_lockstep(self):
        """t=m: both always give up; under a symmetric schedule they
        reset and retry forever."""
        from repro.lowerbounds.symmetry import run_symmetry_attack

        result = run_symmetry_attack(
            ThresholdMutex(m=4, threshold=4), pids(2)
        )
        assert result.violation == "deadlock-freedom"


class TestLenientConsensus:
    def test_paper_threshold_reproduces_fig2(self):
        inputs = {101: "a", 103: "b"}
        system = System(
            LenientConsensus(n=2, threshold=2), inputs, record_trace=False
        )
        result = explore(system, agreement_invariant, max_states=500_000)
        assert result.complete and result.ok

    def test_low_threshold_safety_searched_exhaustively(self):
        """t=1 on n=2: the agreement proof breaks (the adopted value is
        no longer unique), but does the algorithm actually fail?  The
        exhaustive search answers for this instance; either outcome is
        recorded by the ablation bench.  Here we only require the search
        to terminate and the result to be reproducible."""
        inputs = {101: "a", 103: "b"}
        system = System(
            LenientConsensus(n=2, threshold=1), inputs, record_trace=False
        )
        result = explore(
            system, agreement_invariant, max_states=500_000, max_depth=100_000
        )
        # Record the ground truth so regressions surface: the 2-process
        # lenient instance happens to remain safe (plurality tie-break
        # converges); larger instances are probed by the bench.
        assert result.complete
        assert result.ok, result.violation

    def test_lenient_runs_still_decide_under_obstruction(self):
        from repro.runtime.adversary import StagedObstructionAdversary

        inputs = {101: "a", 103: "b", 107: "c"}
        system = System(LenientConsensus(n=3, threshold=2), inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=50, seed=3), max_steps=500_000
        )
        # Decisions happen; whether they AGREE is the ablation's question.
        assert trace.decided()
