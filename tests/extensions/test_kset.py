"""Tests for k-set consensus: spec, partitioned algorithm, impossibility."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.errors import AgreementViolation, ConfigurationError, ValidityViolation
from repro.extensions.kset import (
    KSetChecker,
    PartitionedKSetConsensus,
    demonstrate_kset_unknown_n,
    distinct_decisions,
)
from repro.runtime.adversary import StagedObstructionAdversary
from repro.runtime.events import Trace
from repro.runtime.system import System

from tests.conftest import pids


def trace_with(outputs, inputs, n=4):
    trace = Trace(pids=pids(n), register_count=3, initial_values=(0,) * 3)
    for pid, value in outputs.items():
        trace.outputs[pid] = value
        trace.halt_seq[pid] = 0
    trace.stop_reason = "all-halted"
    return trace


class TestKSetChecker:
    def test_passes_within_k(self):
        inputs = dict(zip(pids(4), "abcd"))
        KSetChecker(2, inputs).check(
            trace_with({pids(4)[0]: "a", pids(4)[1]: "b"}, inputs)
        )

    def test_fires_beyond_k(self):
        inputs = dict(zip(pids(4), "abcd"))
        with pytest.raises(AgreementViolation):
            KSetChecker(2, inputs).check(
                trace_with(
                    {pids(4)[0]: "a", pids(4)[1]: "b", pids(4)[2]: "c"}, inputs
                )
            )

    def test_fires_on_invented_value(self):
        inputs = dict(zip(pids(4), "abcd"))
        with pytest.raises(ValidityViolation):
            KSetChecker(2, inputs).check(trace_with({pids(4)[0]: "z"}, inputs))

    def test_k1_is_consensus(self):
        inputs = dict(zip(pids(2), "ab"))
        with pytest.raises(AgreementViolation):
            KSetChecker(1, inputs).check(
                trace_with({pids(2)[0]: "a", pids(2)[1]: "b"}, inputs, n=2)
            )


class TestPartitionedKSet:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionedKSetConsensus(n=3, k=0)
        with pytest.raises(ConfigurationError):
            PartitionedKSetConsensus(n=3, k=4)

    def test_named_model_only(self):
        assert not PartitionedKSetConsensus(n=4, k=2).is_anonymous()

    def test_register_count(self):
        # n=5, k=2: groups of ceil(5/2)=3, blocks of 2*3-1=5, total 10.
        assert PartitionedKSetConsensus(n=5, k=2).register_count() == 10

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 2), (6, 3), (4, 4), (5, 1)])
    def test_at_most_k_distinct_valid_outputs(self, n, k):
        inputs = {pid: f"v{pid}" for pid in pids(n)}
        for seed in range(3):
            system = System(PartitionedKSetConsensus(n=n, k=k), inputs)
            adversary = StagedObstructionAdversary(prefix_steps=30 * n, seed=seed)
            trace = system.run(adversary, max_steps=500_000)
            assert trace.all_halted()
            KSetChecker(k, inputs).check(trace)

    def test_groups_use_disjoint_blocks(self):
        inputs = {pid: f"v{pid}" for pid in pids(4)}
        algorithm = PartitionedKSetConsensus(n=4, k=2)
        system = System(algorithm, inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=40, seed=1), max_steps=500_000
        )
        block = algorithm.block_size
        groups = {}
        for event in trace.events:
            if event.physical_index is not None:
                groups.setdefault(event.pid, set()).add(
                    event.physical_index // block
                )
        # Each process stays inside exactly one block.
        assert all(len(blocks) == 1 for blocks in groups.values())

    def test_k_equals_1_degenerates_to_consensus(self):
        inputs = {pid: f"v{pid}" for pid in pids(3)}
        system = System(PartitionedKSetConsensus(n=3, k=1), inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=50, seed=2), max_steps=500_000
        )
        assert len(set(trace.decided().values())) == 1


class TestUnknownNImpossibility:
    """The §6.3 remark: generalized covering construction."""

    def test_k1_yields_two_decisions(self):
        reports = demonstrate_kset_unknown_n(
            lambda: AnonymousConsensus(n=3, registers=2), k=1
        )
        assert len(reports) == 1
        values = distinct_decisions(reports)
        assert len(values) == 2  # > k = 1: k-set (consensus) violated

    def test_k2_yields_three_decisions_across_generations(self):
        reports = demonstrate_kset_unknown_n(
            lambda: AnonymousConsensus(n=3, registers=2), k=2
        )
        assert len(reports) == 2
        values = distinct_decisions(reports)
        assert len(values) >= 3  # > k = 2

    def test_generation_inputs_validated(self):
        with pytest.raises(ConfigurationError):
            demonstrate_kset_unknown_n(
                lambda: AnonymousConsensus(n=3, registers=2),
                k=2,
                inputs=("a", "a", "b"),
            )
