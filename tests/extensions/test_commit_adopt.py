"""Tests for the commit-adopt object — including exhaustive verification
of its specification over all schedules on small instances."""

import pytest

from repro.errors import ConfigurationError
from repro.extensions.commit_adopt import ADOPT, COMMIT, CommitAdopt
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import RandomAdversary, SoloAdversary
from repro.runtime.exploration import explore
from repro.runtime.system import System

from tests.conftest import pids


def coherence_invariant(system):
    """CA spec as a state invariant: at most one committed value, and any
    commit forces every output to carry that value."""
    outputs = [o for o in system.scheduler.outputs().values() if o is not None]
    committed = {v for status, v in outputs if status == COMMIT}
    if len(committed) > 1:
        return f"two committed values: {committed}"
    if committed:
        (winner,) = committed
        stray = [(s, v) for s, v in outputs if v != winner]
        if stray:
            return f"outputs {stray} diverge from committed {winner!r}"
    return None


def validity_invariant_for(inputs):
    legal = set(inputs.values())

    def invariant(system):
        for pid, out in system.scheduler.outputs().items():
            if out is not None and out[1] not in legal:
                return f"process {pid} output {out[1]!r}, not a proposal"
        return None

    return invariant


def conjoined(inputs):
    from repro.runtime.exploration import conjoin

    return conjoin(coherence_invariant, validity_invariant_for(inputs))


class TestValidation:
    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitAdopt(())

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitAdopt(("a", "a"))

    def test_zero_in_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitAdopt((0, 1))

    def test_proposal_outside_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitAdopt(("a", "b")).automaton_for(101, "z")

    def test_register_count_is_2d(self):
        assert CommitAdopt(("a", "b")).register_count() == 4
        assert CommitAdopt(("a", "b", "c")).register_count() == 6


class TestExhaustive:
    """The construction's correctness argument, machine-checked."""

    @pytest.mark.parametrize(
        "inputs",
        [
            {101: "a", 103: "b"},
            {101: "a", 103: "a"},
            {101: "b", 103: "a"},
        ],
    )
    def test_two_processes_all_schedules(self, inputs):
        system = System(CommitAdopt(("a", "b")), inputs, record_trace=False)
        result = explore(system, conjoined(inputs), max_states=500_000)
        assert result.complete, result.summary()
        assert result.ok, result.violation
        assert result.stuck_states == 0

    @pytest.mark.parametrize(
        "inputs",
        [
            {101: "a", 103: "b", 107: "a"},
            {101: "a", 103: "b", 107: "b"},
            {101: "a", 103: "a", 107: "a"},
        ],
    )
    def test_three_processes_all_schedules(self, inputs):
        system = System(CommitAdopt(("a", "b")), inputs, record_trace=False)
        result = explore(system, conjoined(inputs), max_states=2_000_000)
        assert result.complete and result.ok, result.violation

    def test_ternary_domain_two_processes(self):
        inputs = {101: "x", 103: "z"}
        system = System(CommitAdopt(("x", "y", "z")), inputs, record_trace=False)
        result = explore(system, conjoined(inputs), max_states=2_000_000)
        assert result.complete and result.ok, result.violation


class TestConvergenceAndWaitFreedom:
    def test_unanimous_proposals_all_commit(self):
        # Convergence: same input everywhere -> everyone commits it.
        inputs = {pid: "v" for pid in pids(4)}
        system = System(CommitAdopt(("v", "w")), inputs)
        trace = system.run(RandomAdversary(3), max_steps=10_000)
        assert trace.all_halted()
        assert all(out == (COMMIT, "v") for out in trace.outputs.values())

    def test_solo_proposer_commits(self):
        system = System(CommitAdopt(("a", "b")), {101: "b", 103: "a"})
        trace = system.run(SoloAdversary(101), max_steps=100)
        assert trace.outputs[101] == (COMMIT, "b")

    def test_wait_free_step_bound(self):
        # Every proposer finishes within 3|D| own steps, regardless of
        # schedule: CA is wait-free, not merely obstruction-free.
        domain = ("a", "b", "c")
        inputs = {pids(5)[k]: domain[k % 3] for k in range(5)}
        for seed in range(6):
            system = System(CommitAdopt(domain), inputs)
            trace = system.run(RandomAdversary(seed), max_steps=10_000)
            assert trace.all_halted()
            for pid in inputs:
                assert trace.steps_taken(pid) <= 3 * len(domain)

    def test_process_count_independence(self):
        # The same 4-register binary object serves 2 or 8 processes.
        algorithm = CommitAdopt(("a", "b"))
        for count in (2, 5, 8):
            inputs = {pids(8)[k]: ("a" if k % 2 else "b") for k in range(count)}
            system = System(algorithm, inputs)
            trace = system.run(RandomAdversary(count), max_steps=10_000)
            assert trace.all_halted()
            assert coherence_invariant(system) is None


class TestSemantics:
    def test_singleton_domain_commits_immediately(self):
        system = System(CommitAdopt(("only",)), {101: "only"})
        trace = system.run(SoloAdversary(101), max_steps=10)
        assert trace.outputs[101] == (COMMIT, "only")
        assert trace.steps_taken(101) == 1  # the single A write

    def test_conflicted_proposer_adopts_committed_value(self):
        # Serialise: p1 commits "a" fully, then p2 proposes "b" and must
        # come back with ("adopt", "a").
        system = System(CommitAdopt(("a", "b")), {101: "a", 103: "b"})
        system.scheduler.run_solo_until_halt(101)
        assert system.scheduler.output_of(101) == (COMMIT, "a")
        system.scheduler.run_solo_until_halt(103)
        assert system.scheduler.output_of(103) == (ADOPT, "a")

    def test_named_model_flag(self):
        assert not CommitAdopt(("a", "b")).is_anonymous()
