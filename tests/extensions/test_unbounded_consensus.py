"""Tests for the commit-adopt-ladder consensus (unknown #processes)."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.extensions.unbounded_consensus import UnboundedConsensus
from repro.memory.naming import IdentityNaming
from repro.runtime.adversary import (
    RandomAdversary,
    RoundRobinAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
)
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    explore,
    validity_invariant,
)
from repro.runtime.system import System
from repro.spec.consensus_spec import (
    AgreementChecker,
    ObstructionFreeTerminationChecker,
    ValidityChecker,
)

from tests.conftest import pids


def binary_inputs(count):
    return {pids(8)[k]: ("one" if k % 2 else "zero") for k in range(count)}


class TestValidation:
    def test_domain_constraints(self):
        with pytest.raises(ConfigurationError):
            UnboundedConsensus(())
        with pytest.raises(ConfigurationError):
            UnboundedConsensus((0, 1))
        with pytest.raises(ConfigurationError):
            UnboundedConsensus(("a",), max_rounds=0)

    def test_register_count_is_rounds_times_block(self):
        assert UnboundedConsensus(("a", "b"), max_rounds=10).register_count() == 40

    def test_named_model(self):
        assert not UnboundedConsensus(("a", "b")).is_anonymous()


class TestBehaviour:
    def test_solo_process_commits_in_round_one(self):
        system = System(UnboundedConsensus(("zero", "one")), binary_inputs(3))
        trace = system.run(SoloAdversary(pids(3)[0]), max_steps=1_000)
        assert trace.outputs[pids(3)[0]] == "zero"
        # One CA: at most 3|D| = 6 steps.
        assert trace.steps_taken(pids(3)[0]) <= 6

    @pytest.mark.parametrize("count", [2, 3, 5, 8])
    def test_agreement_validity_termination(self, count):
        inputs = binary_inputs(count)
        for seed in range(3):
            system = System(UnboundedConsensus(("zero", "one")), inputs)
            adversary = StagedObstructionAdversary(prefix_steps=25 * count, seed=seed)
            trace = system.run(adversary, max_steps=500_000)
            AgreementChecker().check(trace)
            ValidityChecker(inputs).check(trace)
            ObstructionFreeTerminationChecker().check(trace)

    def test_process_count_obliviousness(self):
        # The same algorithm object (same register layout) serves any
        # number of processes — the named-model answer to Theorem 6.3.
        for count in (2, 4, 6, 8):
            inputs = binary_inputs(count)
            system = System(UnboundedConsensus(("zero", "one")), inputs)
            adversary = StagedObstructionAdversary(prefix_steps=30 * count, seed=count)
            trace = system.run(adversary, max_steps=500_000)
            AgreementChecker().check(trace)
            assert len(trace.decided()) == count

    def test_ternary_domain(self):
        inputs = {pids(3)[0]: "x", pids(3)[1]: "y", pids(3)[2]: "z"}
        system = System(UnboundedConsensus(("x", "y", "z")), inputs)
        adversary = StagedObstructionAdversary(prefix_steps=60, seed=1)
        trace = system.run(adversary, max_steps=500_000)
        AgreementChecker().check(trace)
        ValidityChecker(inputs).check(trace)

    def test_bounded_exploration_two_processes(self):
        # The ladder's reachable state space is genuinely infinite (an
        # adversary can interleave proposals so rounds climb forever —
        # see the horizon test below), so exhaustive verification cannot
        # terminate; we bound the depth instead and check safety on the
        # explored prefix, which covers many full decisions.
        inputs = {101: "zero", 103: "one"}
        system = System(
            UnboundedConsensus(("zero", "one"), max_rounds=64),
            inputs,
            record_trace=False,
        )
        result = explore(
            system,
            conjoin(agreement_invariant, validity_invariant),
            max_states=300_000,
            max_depth=120,
        )
        assert result.ok, result.violation
        assert result.states_explored > 10_000

    def test_horizon_exhaustion_raises_rather_than_misdecides(self):
        # Strict alternation can climb the ladder forever (permitted by
        # obstruction-freedom); the simulation horizon must fail loudly.
        inputs = {101: "zero", 103: "one"}
        system = System(
            UnboundedConsensus(("zero", "one"), max_rounds=3), inputs
        )
        with pytest.raises(ProtocolError):
            system.run(RoundRobinAdversary(), max_steps=100_000)
        # And nobody decided anything wrong along the way.
        assert agreement_invariant(system) is None
