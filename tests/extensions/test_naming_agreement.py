"""Tests for the naming-agreement protocol and the AgreedView adapter."""

import pytest

from repro.errors import ConfigurationError
from repro.extensions.naming_agreement import (
    AgreedView,
    ElectionRecord,
    NamingAgreement,
    consistent_namings,
)
from repro.memory.naming import ExplicitNaming, RandomNaming
from repro.runtime.adversary import SoloAdversary, StagedObstructionAdversary
from repro.runtime.system import System

from tests.conftest import pids


class TestProtocol:
    def test_register_count_pinned_to_2n_minus_1(self):
        assert NamingAgreement(n=3).register_count() == 5

    def test_initial_value_is_empty_record(self):
        assert NamingAgreement(n=2).initial_value().is_empty()

    def test_solo_process_elects_itself_and_outputs_identity(self):
        system = System(NamingAgreement(n=2), pids(2))
        trace = system.run(SoloAdversary(pids(2)[0]), max_steps=10_000)
        assert trace.outputs[pids(2)[0]] == (0, 1, 2)

    @pytest.mark.parametrize("seed", range(6))
    def test_serialized_schedules_agree_under_random_namings(self, seed):
        system = System(
            NamingAgreement(n=3), pids(3), naming=RandomNaming(seed)
        )
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=0), max_steps=100_000
        )
        assert trace.all_halted()
        assert consistent_namings(system, trace.outputs)
        for perm in trace.outputs.values():
            assert sorted(perm) == list(range(5))

    @pytest.mark.parametrize("seed", range(4))
    def test_contended_prefix_then_serialized(self, seed):
        system = System(
            NamingAgreement(n=3), pids(3), naming=RandomNaming(seed + 10)
        )
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=25, seed=seed),
            max_steps=100_000,
        )
        if trace.all_halted():  # prefix may elect a non-first leader
            assert consistent_namings(system, trace.outputs)

    def test_stale_vote_is_repaired_by_inference(self):
        """The documented healing path: a non-leader's pending election
        write clobbers a tag after the leader halts; the perpetrator
        infers the missing index by elimination and repairs it."""
        p1, p2, p3 = pids(3)
        system = System(NamingAgreement(n=3), (p1, p2, p3))
        scheduler = system.scheduler
        # Drive p2 to the brink of an election write (pc == "write").
        while scheduler.runtime(p2).state.pc != "write":
            scheduler.step(p2)
        # Leader p1 runs the whole protocol and halts.
        scheduler.run_solo_until_halt(p1)
        assert scheduler.output_of(p1) == (0, 1, 2, 3, 4)
        # p2's stale vote now lands, destroying one tag...
        scheduler.step(p2)
        clobbered = [
            k for k, v in enumerate(system.memory.snapshot())
            if v.kind == "vote"
        ]
        assert len(clobbered) == 1
        # ...and p2 heals it and finishes.
        scheduler.run_solo_until_halt(p2)
        restored = system.memory.snapshot()[clobbered[0]]
        assert restored.kind == "tag"
        scheduler.run_solo_until_halt(p3)
        assert consistent_namings(system, scheduler.outputs())

    def test_double_interleaved_clobber_corner_is_reachable(self):
        """The documented limitation: two interleaved stale votes destroy
        two tags at once; with the leader gone, the information cannot
        be reconstructed and both perpetrators spin.  (An unconditional
        fix would implement named registers from unnamed ones — the
        Corollary 6.4 tension discussed in the module docstring.)"""
        n = 4  # need two non-leaders with pending writes + one bystander
        p1, p2, p3, p4 = pids(4)
        system = System(NamingAgreement(n=n), (p1, p2, p3, p4))
        scheduler = system.scheduler
        # p2 completes one election write (lands at index 0), then lines
        # up its next one (index 1); p3 lines one up at index 0 — two
        # pending writes covering *distinct* registers.
        while scheduler.runtime(p2).state.pc != "write":
            scheduler.step(p2)
        scheduler.step(p2)  # the write itself
        while scheduler.runtime(p2).state.pc != "write":
            scheduler.step(p2)
        while scheduler.runtime(p3).state.pc != "write":
            scheduler.step(p3)
        scheduler.run_solo_until_halt(p1)
        # Both stale votes land before either perpetrator rescans.
        scheduler.step(p2)
        scheduler.step(p3)
        votes = [
            k for k, v in enumerate(system.memory.snapshot())
            if v.kind == "vote"
        ]
        if len(votes) < 2:
            pytest.skip("schedule did not produce two distinct clobbers")
        # Neither perpetrator can finish within a generous budget.
        for pid in (p2, p3):
            for _ in range(5_000):
                if scheduler.runtime(pid).halted:
                    break
                scheduler.step(pid)
            assert not scheduler.runtime(pid).halted


class TestAgreedView:
    def test_rejects_non_bijection(self):
        system = System(NamingAgreement(n=2), pids(2))
        view = system.memory.view(pids(2)[0])
        with pytest.raises(ConfigurationError):
            AgreedView(view, (0, 0, 1))

    def test_translates_leftover_records_to_payload_initial(self):
        system = System(NamingAgreement(n=2), pids(2))
        view = system.memory.view(pids(2)[0])
        agreed = AgreedView(view, (2, 0, 1), payload_initial=0)
        assert agreed.read(0) == 0  # an ElectionRecord underneath
        agreed.write(0, "payload")
        assert agreed.read(0) == "payload"

    def test_agreed_indices_address_same_physical_register(self):
        naming = ExplicitNaming({pids(2)[0]: (0, 1, 2), pids(2)[1]: (2, 1, 0)})
        system = System(NamingAgreement(n=2), pids(2), naming=naming)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=0), max_steps=50_000
        )
        assert trace.all_halted()
        views = {
            pid: AgreedView(system.memory.view(pid), trace.outputs[pid])
            for pid in pids(2)
        }
        views[pids(2)[0]].write(1, "shared")
        assert views[pids(2)[1]].read(1) == "shared"

    def test_peterson_runs_on_agreed_numbering(self):
        """The payoff: a named-model algorithm on anonymous memory, via
        one round of naming agreement."""
        from repro.baselines.named_mutex import PetersonMutex
        from repro.runtime.ops import CritOp, EnterCritOp, ExitCritOp, ReadOp, WriteOp

        naming = RandomNaming(seed=13)
        system = System(NamingAgreement(n=2), pids(2), naming=naming)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=0), max_steps=50_000
        )
        assert trace.all_halted() and consistent_namings(system, trace.outputs)

        peterson = PetersonMutex(cs_visits=2)
        automata = {
            pid: peterson.automaton_for(pid) for pid in pids(2)
        }
        views = {
            pid: AgreedView(system.memory.view(pid), trace.outputs[pid])
            for pid in pids(2)
        }
        states = {pid: automata[pid].initial_state() for pid in pids(2)}
        in_cs = {pid: False for pid in pids(2)}
        overlap = False
        import random

        rng = random.Random(5)
        while not all(automata[p].is_halted(states[p]) for p in pids(2)):
            live = [p for p in pids(2) if not automata[p].is_halted(states[p])]
            pid = rng.choice(live)
            automaton, view = automata[pid], views[pid]
            op = automaton.next_op(states[pid])
            result = None
            if isinstance(op, ReadOp):
                result = view.read(op.index)
            elif isinstance(op, WriteOp):
                view.write(op.index, op.value)
            elif isinstance(op, EnterCritOp):
                in_cs[pid] = True
            elif isinstance(op, ExitCritOp):
                in_cs[pid] = False
            if all(in_cs.values()):
                overlap = True
            states[pid] = automaton.apply(states[pid], op, result)
        assert not overlap
        assert all(automata[p].output(states[p]) == 2 for p in pids(2))
