"""Extensions under the real-thread backend.

Wait-free objects (commit-adopt, splitter renaming) are safe to run on
threads without backoff — every process finishes in a bounded number of
its own steps no matter the interleaving.  The obstruction-free ladder
uses backoff, as the deployment story prescribes.
"""

import pytest

from repro.baselines.splitter_renaming import SplitterRenaming
from repro.extensions.commit_adopt import COMMIT, CommitAdopt
from repro.extensions.unbounded_consensus import UnboundedConsensus
from repro.runtime.threads import run_threaded, run_threaded_with_backoff

from tests.conftest import pids


class TestCommitAdoptOnThreads:
    def test_unanimous_commit(self):
        inputs = {pid: "v" for pid in pids(4)}
        result = run_threaded(CommitAdopt(("v", "w")), inputs, timeout=30.0)
        assert result.ok, (result.timed_out, result.errors)
        assert all(out == (COMMIT, "v") for out in result.outputs.values())

    def test_contended_coherence(self):
        inputs = {pids(4)[k]: ("a" if k % 2 else "b") for k in range(4)}
        for seed in range(3):
            result = run_threaded(
                CommitAdopt(("a", "b")), inputs, timeout=30.0, seed=seed
            )
            assert result.ok, (result.timed_out, result.errors)
            committed = {
                v for status, v in result.outputs.values() if status == COMMIT
            }
            assert len(committed) <= 1
            if committed:
                (winner,) = committed
                assert all(v == winner for _, v in result.outputs.values())

    def test_wait_free_without_backoff(self):
        # No backoff needed: the object is wait-free, so plain threads
        # always terminate within the step bound.
        inputs = {pids(6)[k]: ("a" if k % 2 else "b") for k in range(6)}
        result = run_threaded(CommitAdopt(("a", "b")), inputs, timeout=30.0)
        assert result.ok
        assert all(steps <= 6 for steps in result.steps.values())


class TestLadderOnThreads:
    def test_ladder_with_backoff_decides(self):
        inputs = {pids(4)[k]: ("one" if k % 2 else "zero") for k in range(4)}
        result = run_threaded_with_backoff(
            UnboundedConsensus(("zero", "one"), max_rounds=256),
            inputs,
            timeout=60.0,
        )
        assert result.ok, (result.timed_out, result.errors)
        assert len(set(result.outputs.values())) == 1
        assert set(result.outputs.values()) <= {"zero", "one"}


class TestSplitterOnThreads:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_unique_names_without_backoff(self, n):
        result = run_threaded(SplitterRenaming(n=n), pids(n), timeout=30.0)
        assert result.ok, (result.timed_out, result.errors)
        names = list(result.outputs.values())
        assert len(set(names)) == len(names)
        bound = n * (n + 1) // 2
        assert all(1 <= name <= bound for name in names)

    def test_wait_free_step_bound_on_threads(self):
        n = 4
        result = run_threaded(SplitterRenaming(n=n), pids(n), timeout=30.0)
        assert result.ok
        assert all(steps <= 4 * n for steps in result.steps.values())
