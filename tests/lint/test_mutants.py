"""Adversarial validation: every mutant must be caught by its pass."""

import pytest

from repro.lint.anonymity import check_class as anonymity_check
from repro.lint.anonymity import run_anonymity_pass
from repro.lint.domains import check_class as domains_check
from repro.lint.findings import errors_in
from repro.lint.footprints import check_class as footprints_check
from repro.lint.pc_audit import check_class as pc_check
from repro.lint.pc_audit import run_pc_reachability
from repro.lint.races import AccessEvent, analyze_events, record_threaded_run
from repro.lint.registry import LintTarget
from repro.lint.symmetry import check_class as symmetry_check
from repro.problems.spec import AutomatonFootprint
from repro.runtime.adversary import RandomAdversary
from repro.runtime.system import System

from tests.conftest import pids
from tests.lint.mutants import (
    ALL_MUTANTS,
    CheatingSubstrateProcess,
    DeadPcProcess,
    DomainEscapeProcess,
    FootprintDriftProcess,
    MutantAlgorithm,
    NoAnnotationsProcess,
    PcFreeStateProcess,
    PhysicalSnoopProcess,
    PidArithmeticProcess,
    PidHashingProcess,
    PidIndexingProcess,
    PidLaunderingProcess,
    PidOrderingProcess,
    PidReadIndexProcess,
    UnannotatedPcProcess,
)


class TestSymmetryMutants:
    @pytest.mark.parametrize(
        "mutant, fragment",
        [
            (PidArithmeticProcess, "arithmetic"),
            (PidOrderingProcess, "non-equality comparison"),
            (PidIndexingProcess, "index"),
            (PidHashingProcess, "numeric builtin hash"),
            (PidReadIndexProcess, "ReadOp register index"),
            (PidLaunderingProcess, "index"),
        ],
    )
    def test_mutant_is_flagged(self, mutant, fragment):
        findings = errors_in(symmetry_check(mutant))
        assert findings, f"{mutant.__name__} slipped past the symmetry pass"
        assert any(fragment in f.detail for f in findings), findings

    def test_findings_carry_locations(self):
        (finding,) = errors_in(symmetry_check(PidHashingProcess))
        assert "mutants.py:" in finding.location

    def test_laundered_pid_invisible_to_expression_shapes(self):
        # The forbidden subscript never mentions ``pid`` syntactically —
        # only value tracking can connect ``x`` back to the identifier.
        import ast
        import inspect
        import textwrap

        from repro.lint.symmetry import contains_pid

        source = textwrap.dedent(
            inspect.getsource(PidLaunderingProcess.apply)
        )
        subscripts = [
            node
            for node in ast.walk(ast.parse(source))
            if isinstance(node, ast.Subscript)
        ]
        assert subscripts and not any(contains_pid(s) for s in subscripts)


class TestFootprintMutants:
    def test_undeclared_footprint_flagged(self):
        findings = errors_in(footprints_check(FootprintDriftProcess))
        assert any(f.rule == "undeclared" for f in findings), findings

    def test_drift_against_explicit_declaration_flagged(self):
        wrong = AutomatonFootprint(writes_pid=True, symbolic_indexing=True)
        findings = errors_in(footprints_check(FootprintDriftProcess, wrong))
        assert any(f.rule == "drift" for f in findings), findings
        detail = " | ".join(f.detail for f in findings)
        assert "writes_pid" in detail and "write_constants" in detail

    def test_correct_declaration_is_accepted(self):
        right = AutomatonFootprint(
            write_constants=(7,),
            index_constants=(0,),
        )
        assert not errors_in(footprints_check(FootprintDriftProcess, right))

    def test_hook_claims_decoupled_from_writes_flagged(self):
        from repro.lint.footprints import infer_footprint
        from tests.lint.mutants import HookDriftProcess

        # Hand the checker the correct declaration so only the
        # hook-coupling violation remains.
        declared = infer_footprint(HookDriftProcess)
        findings = errors_in(footprints_check(HookDriftProcess, declared))
        assert [f.rule for f in findings] == ["hook-coupling"], findings
        assert "pids_renamed" in findings[0].detail


class TestDomainMutants:
    def test_unbounded_write_flagged(self):
        findings = errors_in(domains_check(DomainEscapeProcess))
        assert any(f.rule == "unbounded-write" for f in findings), findings
        assert any("unbounded domain" in f.detail for f in findings)
        assert any("mutants.py:" in f.location for f in findings)

    def test_other_mutants_do_not_trip_domains(self):
        # The symmetry mutants misuse the pid but never write from an
        # unbounded domain; no cross-pass false positives.
        for mutant in (PidArithmeticProcess, PidIndexingProcess):
            assert not errors_in(domains_check(mutant))


class TestAnonymityMutants:
    def test_physical_snoop_flagged_statically(self):
        findings = errors_in(anonymity_check(PhysicalSnoopProcess))
        assert any("physical_index_of" in f.detail for f in findings), findings

    def test_substrate_cheat_flagged_at_runtime(self):
        # The reference arrives under an innocent attribute name, so the
        # AST pass cannot see it...
        assert not errors_in(anonymity_check(CheatingSubstrateProcess))
        # ...but the memory audit catches the bypassing access.
        system = System(
            MutantAlgorithm(CheatingSubstrateProcess),
            pids(2),
            record_trace=False,
        )
        audit = system.memory.install_audit()
        for automaton in system.automata.values():
            automaton.substrate = system.memory.array
        system.run(RandomAdversary(3), max_steps=10_000)
        assert not audit.ok
        assert audit.bypasses[0].kind == "read"
        assert "BYPASS" in audit.summary()

    def test_static_pass_accepts_mutant_list_without_false_positives(self):
        # Mutants that only break symmetry must not trip the anonymity pass.
        clean = run_anonymity_pass([PidArithmeticProcess, PidOrderingProcess])
        assert not errors_in(clean)


class TestPcAuditMutants:
    def test_unannotated_pc_flagged(self):
        findings = errors_in(pc_check(UnannotatedPcProcess))
        assert any("'ghost'" in f.detail for f in findings), findings

    def test_missing_pc_lines_flagged(self):
        findings = errors_in(pc_check(NoAnnotationsProcess))
        assert any("no PC_LINES" in f.detail for f in findings), findings

    def test_dead_pc_flagged_by_exhaustive_exploration(self):
        target = LintTarget(
            "mutant(DeadPcProcess)",
            lambda: MutantAlgorithm(DeadPcProcess),
            pids(2),
            naming_seed=None,
        )
        findings = errors_in(run_pc_reachability(target))
        assert any("'phantom'" in f.detail for f in findings), findings

    def test_state_without_pc_flagged(self):
        target = LintTarget(
            "mutant(PcFreeStateProcess)",
            lambda: MutantAlgorithm(PcFreeStateProcess),
            pids(2),
            naming_seed=None,
        )
        findings = errors_in(run_pc_reachability(target))
        assert any("no pc attribute" in f.detail for f in findings), findings


class TestRaceMutants:
    def _event(self, seq, thread, reg, kind, guarded):
        return AccessEvent(seq, f"proc-{thread}", thread, reg, kind, guarded)

    def test_torn_rmw_detected_on_unguarded_stream(self):
        # proc-101 reads r0, proc-103's write lands, proc-101 writes r0.
        events = [
            self._event(0, 101, 0, "read", False),
            self._event(1, 103, 0, "write", False),
            self._event(2, 101, 0, "write", False),
        ]
        findings = errors_in(analyze_events(events, "synthetic"))
        assert any("torn read-modify-write" in f.detail for f in findings)

    def test_unguarded_stream_reports_races_and_lock_discipline(self):
        events = [
            self._event(0, 101, 0, "write", False),
            self._event(1, 103, 0, "write", False),
        ]
        findings = errors_in(analyze_events(events, "synthetic"))
        details = " | ".join(f.detail for f in findings)
        assert "lock discipline" in details
        assert "data race" in details

    def test_guarded_stream_is_clean(self):
        # Same interleaving, but lock-protected: the per-register lock
        # orders the accesses, so nothing races and discipline holds.
        events = [
            self._event(0, 101, 0, "read", True),
            self._event(1, 103, 0, "write", True),
            self._event(2, 101, 0, "write", True),
        ]
        assert analyze_events(events, "synthetic") == []

    def test_live_unlocked_run_violates_lock_discipline(self):
        from repro.core.mutex import AnonymousMutex

        system = System(
            AnonymousMutex(m=3, cs_visits=2),
            pids(2),
            locked=False,  # MUTANT configuration: thread backend needs locked=True
            record_trace=False,
        )
        findings, events = record_threaded_run(
            system, "unlocked-mutex", max_steps=100_000, timeout=20.0
        )
        assert events, "threaded run recorded no accesses"
        assert any(
            "lock discipline" in f.detail for f in errors_in(findings)
        ), findings


def test_every_mutant_is_caught_by_its_pass():
    """The headline guarantee: each mutant trips at least its own pass."""
    from tests.lint import test_mutants as self_module  # noqa: F401

    static_checks = {
        "symmetry": symmetry_check,
        "anonymity": anonymity_check,
        "pc-audit": pc_check,
        "footprints": footprints_check,
        "domains": domains_check,
    }
    dynamic_pc = {DeadPcProcess, PcFreeStateProcess}
    runtime_anonymity = {CheatingSubstrateProcess}
    for mutant, pass_name in ALL_MUTANTS:
        if mutant in dynamic_pc or mutant in runtime_anonymity:
            continue  # covered by the dedicated dynamic tests above
        findings = errors_in(static_checks[pass_name](mutant))
        assert findings, f"{mutant.__name__} not caught by {pass_name}"
        assert all(f.pass_name == pass_name for f in findings)
