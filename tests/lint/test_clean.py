"""Zero false positives: every shipped algorithm passes every lint pass."""

from repro.lint.anonymity import run_anonymity_audits, run_anonymity_pass
from repro.lint.cli import collect_findings
from repro.lint.domains import run_domains_pass
from repro.lint.findings import errors_in
from repro.lint.footprints import declared_footprints, infer_footprint, run_footprint_pass
from repro.lint.pc_audit import run_pc_reachability_pass, run_pc_static_pass
from repro.lint.races import run_race_sanitizer
from repro.lint.registry import lint_targets, shipped_automaton_classes
from repro.lint.symmetry import run_symmetry_pass


def test_discovery_finds_all_shipped_automata():
    names = {cls.__qualname__ for cls in shipped_automaton_classes()}
    expected = {
        "AnonymousMutexProcess",
        "AnonymousConsensusProcess",
        "AnonymousRenamingProcess",
        "NamedConsensusProcess",
        "TournamentMutexProcess",
        "ElectionChainProcess",
        "SplitterRenamingProcess",
        "CommitAdoptProcess",
        "PartitionedProcess",
        "NamingAgreementProcess",
        "LadderConsensusProcess",
        "ThresholdMutexProcess",
        "LenientConsensusProcess",
        "NaiveTestAndSetProcess",
    }
    assert expected <= names


def test_discovery_excludes_test_mutants():
    import tests.lint.mutants  # noqa: F401  (force the subclasses to exist)

    assert all(
        cls.__module__.startswith("repro.") for cls in shipped_automaton_classes()
    )


def test_symmetry_pass_clean_on_shipped_algorithms():
    findings = run_symmetry_pass()
    assert errors_in(findings) == []
    # The named-model baselines are skipped with a note, not silently.
    skipped = {f.subject for f in findings if "SYMMETRIC = False" in f.detail}
    assert "TournamentMutexProcess" in skipped


def test_footprint_pass_clean_on_shipped_algorithms():
    assert run_footprint_pass() == []


def test_every_shipped_footprint_matches_its_declaration():
    # The acceptance criterion, spelled out: each shipped automaton's
    # inferred footprint equals its registry declaration exactly.
    declared, conflicts = declared_footprints()
    assert conflicts == []
    for cls in shipped_automaton_classes():
        inferred = infer_footprint(cls)
        assert inferred is not None, cls.__qualname__
        assert cls.__qualname__ in declared, cls.__qualname__
        assert inferred == declared[cls.__qualname__], (
            cls.__qualname__,
            inferred.describe(),
            declared[cls.__qualname__].describe(),
        )


def test_domains_pass_clean_on_shipped_algorithms():
    assert run_domains_pass() == []


def test_anonymity_pass_clean_on_shipped_algorithms():
    assert errors_in(run_anonymity_pass()) == []


def test_anonymity_audits_clean_on_registry_instances():
    assert errors_in(run_anonymity_audits()) == []


def test_pc_static_pass_clean_on_shipped_algorithms():
    assert errors_in(run_pc_static_pass()) == []


def test_pc_lines_annotations_present_everywhere():
    for cls in shipped_automaton_classes():
        assert cls.PC_LINES, f"{cls.__qualname__} lacks PC_LINES"


def test_pc_reachability_clean_on_registry_instances():
    assert run_pc_reachability_pass() == []


def test_race_sanitizer_clean_on_locked_runs():
    for target in lint_targets():
        if target.race_check:
            assert errors_in(run_race_sanitizer(target)) == [], target.label


def test_full_lint_run_has_zero_errors():
    assert errors_in(collect_findings()) == []
