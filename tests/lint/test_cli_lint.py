"""The ``python -m repro lint`` entry point."""

import repro.lint.cli as lint_cli
from repro.__main__ import main as repro_main
from repro.lint.findings import Finding


class TestLintCli:
    def test_lint_subcommand_exits_zero_when_clean(self, capsys):
        assert repro_main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "repro lint:" in out
        assert "all model disciplines hold" in out

    def test_flags_are_forwarded_through_main(self, capsys):
        assert repro_main(["lint", "--static-only", "--quiet-info"]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_static_only_skips_dynamic_passes(self, capsys):
        assert lint_cli.main(["--static-only"]) == 0
        assert "all model disciplines hold" in capsys.readouterr().out

    def test_errors_produce_table_and_nonzero_exit(self, capsys, monkeypatch):
        bad = Finding(
            pass_name="symmetry",
            severity="error",
            subject="EvilProcess",
            detail="arithmetic on a process identifier (Mod)",
            location="evil.py:1",
        )
        monkeypatch.setattr(
            lint_cli, "collect_findings", lambda **kwargs: [bad]
        )
        assert lint_cli.main([]) == 1
        out = capsys.readouterr().out
        assert "LINT FAILED" in out
        assert "EvilProcess" in out
        assert "repro lint findings" in out

    def test_quiet_info_hides_notes(self, capsys):
        assert lint_cli.main(["--static-only", "--quiet-info"]) == 0
        out = capsys.readouterr().out
        assert "SYMMETRIC = False" not in out
