"""Findings engine v2: IDs, JSON/SARIF emitters, baseline, CLI gating."""

import json

import pytest

import repro.lint.cli as lint_cli
from repro.lint.baseline import (
    BaselineError,
    Suppression,
    apply_baseline,
    load_baseline,
)
from repro.lint.findings import Finding, assign_ids, failures_in
from repro.lint.sarif import SARIF_VERSION, render_json, render_sarif

ERROR = Finding(
    pass_name="symmetry",
    severity="error",
    subject="EvilProcess",
    detail="arithmetic on a process identifier (Mod)",
    location="repro/core/evil.py:12",
    rule="pid-arithmetic",
)
WARNING = Finding(
    pass_name="footprints",
    severity="warning",
    subject="MehProcess",
    detail="something dubious",
    rule="drift",
)
INFO = Finding(
    pass_name="symmetry",
    severity="info",
    subject="NamedProcess",
    detail="declares SYMMETRIC = False — skipped",
    rule="skipped",
)


class TestFindingIds:
    def test_ids_are_pass_rule_subject(self):
        (pair,) = assign_ids([ERROR])
        assert pair[0] == "symmetry.pid-arithmetic.EvilProcess"

    def test_repeats_get_ordinals(self):
        ids = [fid for fid, _ in assign_ids([ERROR, ERROR, ERROR])]
        assert ids == [
            "symmetry.pid-arithmetic.EvilProcess",
            "symmetry.pid-arithmetic.EvilProcess#2",
            "symmetry.pid-arithmetic.EvilProcess#3",
        ]

    def test_missing_rule_falls_back_to_general(self):
        bare = Finding("races", "error", "X", "boom")
        (pair,) = assign_ids([bare])
        assert pair[0] == "races.general.X"

    def test_strictness_gates_warnings(self):
        findings = [WARNING, INFO]
        assert failures_in(findings) == []
        assert failures_in(findings, strict=True) == [WARNING]


class TestJsonOutput:
    def test_json_is_sorted_by_id_and_deterministic(self):
        forward = render_json(assign_ids([ERROR, WARNING, INFO]))
        # Different pass ordering, same findings: identical document.
        backward = render_json(assign_ids([INFO, WARNING, ERROR]))
        assert forward == backward
        ids = [f["id"] for f in json.loads(forward)["findings"]]
        assert ids == sorted(ids)

    def test_json_golden(self):
        document = json.loads(render_json(assign_ids([ERROR])))
        assert document == {
            "version": 1,
            "findings": [
                {
                    "id": "symmetry.pid-arithmetic.EvilProcess",
                    "pass": "symmetry",
                    "rule": "pid-arithmetic",
                    "severity": "error",
                    "subject": "EvilProcess",
                    "detail": "arithmetic on a process identifier (Mod)",
                    "location": "repro/core/evil.py:12",
                }
            ],
        }


def _validate_sarif_2_1_0(document: dict) -> None:
    """Structural validation against the SARIF 2.1.0 required shape.

    (The full JSON Schema needs the ``jsonschema`` package plus a
    network fetch; this asserts every constraint the spec marks
    *required* on the path we emit.)
    """
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0.json" in document["$schema"]
    assert isinstance(document["runs"], list) and document["runs"]
    for run in document["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        rule_ids = set()
        for rule in driver.get("rules", []):
            assert isinstance(rule["id"], str) and rule["id"]
            rule_ids.add(rule["id"])
        for result in run.get("results", []):
            assert result["message"]["text"]
            assert result["level"] in {"none", "note", "warning", "error"}
            assert result["ruleId"] in rule_ids
            for location in result.get("locations", []):
                physical = location["physicalLocation"]
                assert physical["artifactLocation"]["uri"]
                assert physical["region"]["startLine"] >= 1


class TestSarifOutput:
    def test_document_validates_against_2_1_0_shape(self):
        document = json.loads(render_sarif(assign_ids([ERROR, WARNING, INFO])))
        _validate_sarif_2_1_0(document)

    def test_severity_mapping_and_locations(self):
        document = json.loads(render_sarif(assign_ids([ERROR, INFO])))
        results = document["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        error = by_rule["symmetry.pid-arithmetic"]
        assert error["level"] == "error"
        region = error["locations"][0]["physicalLocation"]
        assert region["artifactLocation"]["uri"] == "repro/core/evil.py"
        assert region["region"]["startLine"] == 12
        note = by_rule["symmetry.skipped"]
        assert note["level"] == "note"
        assert "locations" not in note  # no file:line to point at

    def test_sarif_version_constant(self):
        assert SARIF_VERSION == "2.1.0"

    def test_full_real_run_emits_valid_sarif(self):
        from repro.lint.findings import assign_ids as real_ids

        findings = lint_cli.collect_findings(skip_dynamic=True)
        document = json.loads(render_sarif(real_ids(findings)))
        _validate_sarif_2_1_0(document)


class TestBaseline:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_round_trip(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {
                            "id": "symmetry.pid-arithmetic.EvilProcess",
                            "reason": "tracked in #42",
                        }
                    ],
                }
            )
        )
        (suppression,) = load_baseline(path)
        assert suppression.finding_id == "symmetry.pid-arithmetic.EvilProcess"
        assert suppression.reason == "tracked in #42"

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "v2.json"
        path.write_text('{"version": 2, "suppressions": []}')
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_suppression_drops_matching_finding(self):
        identified = assign_ids([ERROR, INFO])
        kept, stale = apply_baseline(
            identified,
            [Suppression("symmetry.pid-arithmetic.EvilProcess", "known")],
        )
        assert [fid for fid, _ in kept] == ["symmetry.skipped.NamedProcess"]
        assert stale == []

    def test_stale_suppression_becomes_warning(self):
        kept, stale = apply_baseline(
            assign_ids([INFO]), [Suppression("symmetry.gone.Nobody", "old")]
        )
        assert len(kept) == 1
        (warning,) = stale
        assert warning.severity == "warning"
        assert warning.rule == "stale-suppression"
        assert "symmetry.gone.Nobody" in warning.subject


class TestCliGating:
    def _patch(self, monkeypatch, findings):
        monkeypatch.setattr(
            lint_cli, "collect_findings", lambda **kwargs: list(findings)
        )

    def test_baseline_suppresses_error(self, tmp_path, monkeypatch, capsys):
        self._patch(monkeypatch, [ERROR])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {"id": "symmetry.pid-arithmetic.EvilProcess"}
                    ],
                }
            )
        )
        assert lint_cli.main(["--baseline", str(baseline)]) == 0
        assert "EvilProcess" not in capsys.readouterr().out

    def test_stale_suppression_fails_only_strict(self, tmp_path, monkeypatch):
        self._patch(monkeypatch, [])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {"version": 1, "suppressions": [{"id": "symmetry.gone.X"}]}
            )
        )
        assert lint_cli.main(["--baseline", str(baseline)]) == 0
        assert (
            lint_cli.main(["--baseline", str(baseline), "--strict"]) == 1
        )

    def test_warning_fails_only_strict(self, monkeypatch):
        self._patch(monkeypatch, [WARNING])
        assert lint_cli.main(["--baseline", ""]) == 0
        assert lint_cli.main(["--baseline", "", "--strict"]) == 1

    def test_json_output_file(self, tmp_path, monkeypatch):
        self._patch(monkeypatch, [ERROR, INFO])
        out = tmp_path / "findings.json"
        assert (
            lint_cli.main(
                ["--baseline", "", "--format", "json", "--output", str(out)]
            )
            == 1
        )
        document = json.loads(out.read_text())
        ids = [f["id"] for f in document["findings"]]
        assert ids == sorted(ids)
        assert "symmetry.pid-arithmetic.EvilProcess" in ids

    def test_sarif_output_file_validates(self, tmp_path, monkeypatch):
        self._patch(monkeypatch, [ERROR])
        out = tmp_path / "lint.sarif"
        lint_cli.main(
            ["--baseline", "", "--format", "sarif", "--output", str(out)]
        )
        _validate_sarif_2_1_0(json.loads(out.read_text()))

    def test_malformed_baseline_exits_2(self, tmp_path, monkeypatch, capsys):
        self._patch(monkeypatch, [])
        baseline = tmp_path / "broken.json"
        baseline.write_text("{nope")
        assert lint_cli.main(["--baseline", str(baseline)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_checked_in_baseline_is_valid_and_fresh(self):
        from repro.lint.baseline import DEFAULT_BASELINE

        # The repo's own baseline must parse — and stay empty until a
        # finding is deliberately suppressed with a reason.
        suppressions = load_baseline(DEFAULT_BASELINE)
        assert all(s.finding_id for s in suppressions)
