"""Deliberately broken automata the lint passes must catch.

Each mutant violates exactly one model discipline, in the most tempting
way a real implementation bug would: pid arithmetic for load balancing,
pid-indexed registers, peeking at the physical numbering, skipping the
pc annotation after renaming a label, and so on.  The mutant tests
assert that every one of them is flagged by the matching pass — and the
clean tests assert that none of the shipped algorithms are.

These classes live outside the :mod:`repro` package on purpose:
:func:`repro.lint.registry.shipped_automaton_classes` filters by module,
so importing this file can never contaminate a clean lint run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId


@dataclass(frozen=True)
class StepState:
    """Shared trivial state: a pc and a scratch value."""

    pc: str = "start"
    scratch: Any = None


class _TwoStepBase(ProcessAutomaton):
    """Write register 0, read it back, halt — a minimal legal automaton."""

    PC_LINES = {
        "start": "test mutant — write register 0",
        "readback": "test mutant — read register 0 back",
        "done": "test mutant — halted",
    }

    def __init__(self, pid: ProcessId):
        self.pid = pid

    def initial_state(self) -> StepState:
        return StepState()

    def is_halted(self, state: StepState) -> bool:
        return state.pc == "done"

    def output(self, state: StepState) -> Any:
        return state.scratch if state.pc == "done" else None

    def next_op(self, state: StepState) -> Operation:
        if state.pc == "start":
            return WriteOp(0, self.pid)
        return ReadOp(0)

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        if state.pc == "start":
            return replace(state, pc="readback")
        return replace(state, pc="done", scratch=result)


# ---------------------------------------------------------------------------
# Symmetry mutants — each uses the identifier in a forbidden way (§2).
# ---------------------------------------------------------------------------


class PidArithmeticProcess(_TwoStepBase):
    """Routes by pid parity — arithmetic on an identifier."""

    def next_op(self, state: StepState) -> Operation:
        if state.pc == "start":
            return WriteOp(self.pid % 2, 1)  # MUTANT: pid arithmetic
        return ReadOp(0)


class PidOrderingProcess(_TwoStepBase):
    """Breaks ties by pid order — identifiers are not ordered in §2."""

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        if state.pc == "readback" and self.pid < 100:  # MUTANT: pid ordering
            return replace(state, pc="done", scratch=result)
        return super().apply(state, op, result)


class PidIndexingProcess(_TwoStepBase):
    """Indexes its collected view by pid — pid-as-index."""

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        myview = (result, result)
        if state.pc == "readback":
            return replace(state, pc="done", scratch=myview[self.pid])  # MUTANT
        return super().apply(state, op, result)


class PidHashingProcess(_TwoStepBase):
    """Seeds a choice with hash(pid) — identifiers are not numbers."""

    def next_op(self, state: StepState) -> Operation:
        if state.pc == "start":
            return WriteOp(0, hash(self.pid))  # MUTANT: numeric builtin on pid
        return ReadOp(0)


class PidReadIndexProcess(_TwoStepBase):
    """Reads register number pid — identifiers as register names."""

    def next_op(self, state: StepState) -> Operation:
        if state.pc == "start":
            return WriteOp(0, 1)
        return ReadOp(self.pid)  # MUTANT: pid as a register index


class PidLaunderingProcess(_TwoStepBase):
    """Launders the pid through a local before indexing with it.

    No expression here *contains* ``self.pid``'s shape at the forbidden
    site, so the old syntactic pass was blind to it; the dataflow IR
    tracks the identifier's taint through the assignment and flags the
    subscript.
    """

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        x = self.pid  # MUTANT: the identifier goes underground here...
        myview = (result, result)
        if state.pc == "readback":
            return replace(state, pc="done", scratch=myview[x])  # ...and surfaces here
        return super().apply(state, op, result)


# ---------------------------------------------------------------------------
# Anonymity mutants — touching the substrate behind the view.
# ---------------------------------------------------------------------------


class PhysicalSnoopProcess(_TwoStepBase):
    """Asks its view for the physical index — pierces the numbering."""

    def __init__(self, pid: ProcessId, view: Any = None):
        super().__init__(pid)
        self.view = view

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        if state.pc == "readback" and self.view is not None:
            phys = self.view.physical_index_of(0)  # MUTANT: static + runtime
            return replace(state, pc="done", scratch=phys)
        return super().apply(state, op, result)


class CheatingSubstrateProcess(_TwoStepBase):
    """Was handed the raw array and uses it directly.

    No AST pattern reliably catches the *handing over* (the reference
    arrives under an innocent name), which is exactly what the runtime
    :class:`~repro.memory.anonymous.MemoryAudit` exists for.
    """

    def __init__(self, pid: ProcessId, substrate: Any = None):
        super().__init__(pid)
        self.substrate = substrate

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        if state.pc == "readback" and self.substrate is not None:
            sneak = self.substrate.read(0)  # MUTANT: bypasses the views
            return replace(state, pc="done", scratch=sneak)
        return super().apply(state, op, result)


# ---------------------------------------------------------------------------
# Footprint / bounded-domain mutants.
# ---------------------------------------------------------------------------


class FootprintDriftProcess(_TwoStepBase):
    """Ships without (or against) an AutomatonFootprint declaration.

    Writes a constant the registry knows nothing about: with no
    declaration the footprint pass reports ``undeclared``; handed a
    deliberately wrong declaration it reports ``drift``.
    """

    def next_op(self, state: StepState) -> Operation:
        if state.pc == "start":
            return WriteOp(0, 7)  # MUTANT: unregistered write footprint
        return ReadOp(0)


class HookDriftProcess(_TwoStepBase):
    """Owns a trusted hook bundle that never renames pids — yet writes one.

    All four symmetry hooks are overridden here (so the canonicalizer
    trusts them), but ``rename_register_value`` ignores the pid renaming
    while the inherited ``next_op`` writes ``self.pid`` to register 0:
    exactly the decoupling that would silently break the symmetry
    reduction's bisimulation argument.
    """

    def symmetry_signature(self) -> Tuple[Any, Any]:
        return ((), None)

    def state_footprint(self, state: StepState) -> StepState:
        return state

    def rename_state_footprint(
        self, footprint: StepState, pids_renamed: Any, values_renamed: Any
    ) -> StepState:
        return footprint

    def rename_register_value(
        self, value: Any, pids_renamed: Any, values_renamed: Any
    ) -> Any:
        return value  # MUTANT: pids_renamed never consulted


class DomainEscapeProcess(_TwoStepBase):
    """Accumulates an unwitnessed counter and writes it to a register.

    ``scratch`` grows by one per round with no comparison bounding it
    anywhere in the class, so the value written at ``pc == "bump"`` is
    drawn from an unbounded domain — exploration could never exhaust
    this automaton's reachable registers.
    """

    PC_LINES = dict(
        _TwoStepBase.PC_LINES, bump="test mutant — write the counter back"
    )

    def next_op(self, state: StepState) -> Operation:
        if state.pc == "start":
            return WriteOp(0, 1)
        if state.pc == "bump":
            return WriteOp(0, state.scratch)  # MUTANT: unbounded value
        return ReadOp(0)

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        if state.pc == "start":
            return replace(state, pc="readback")
        if state.pc == "readback":
            return replace(state, pc="bump", scratch=result + 1)  # MUTANT
        return replace(state, pc="done", scratch=result)


# ---------------------------------------------------------------------------
# PC-annotation mutants.
# ---------------------------------------------------------------------------


class UnannotatedPcProcess(_TwoStepBase):
    """Renamed a pc in code but not in PC_LINES."""

    def apply(self, state: StepState, op: Operation, result: Any) -> StepState:
        if state.pc == "start":
            return replace(state, pc="ghost")  # MUTANT: not in PC_LINES
        return replace(state, pc="done", scratch=result)


class NoAnnotationsProcess(_TwoStepBase):
    """Dropped the PC_LINES map entirely."""

    PC_LINES = None  # MUTANT: annotation removed


class DeadPcProcess(_TwoStepBase):
    """Annotates a pc no reachable state ever exhibits."""

    PC_LINES = {
        "start": "test mutant — write register 0",
        "readback": "test mutant — read register 0 back",
        "done": "test mutant — halted",
        "phantom": "test mutant — documented but unreachable",  # MUTANT
    }


class PcFreeStateProcess(ProcessAutomaton):
    """Keeps its location counter under a different name — no pc at all."""

    PC_LINES = {"start": "test mutant"}

    def __init__(self, pid: ProcessId):
        self.pid = pid

    def initial_state(self) -> Tuple[int, ...]:
        return (0,)  # MUTANT: state without a pc field

    def is_halted(self, state: Tuple[int, ...]) -> bool:
        return state[0] >= 1

    def output(self, state: Tuple[int, ...]) -> Optional[int]:
        return state[0] if state[0] >= 1 else None

    def next_op(self, state: Tuple[int, ...]) -> Operation:
        return ReadOp(0)

    def apply(
        self, state: Tuple[int, ...], op: Operation, result: Any
    ) -> Tuple[int, ...]:
        return (state[0] + 1,)


#: Every mutant the pass-specific tests iterate over, with the pass that
#: must catch it.
ALL_MUTANTS = (
    (PidArithmeticProcess, "symmetry"),
    (PidOrderingProcess, "symmetry"),
    (PidIndexingProcess, "symmetry"),
    (PidHashingProcess, "symmetry"),
    (PidReadIndexProcess, "symmetry"),
    (PidLaunderingProcess, "symmetry"),
    (FootprintDriftProcess, "footprints"),
    (HookDriftProcess, "footprints"),
    (DomainEscapeProcess, "domains"),
    (PhysicalSnoopProcess, "anonymity"),
    (CheatingSubstrateProcess, "anonymity"),
    (UnannotatedPcProcess, "pc-audit"),
    (NoAnnotationsProcess, "pc-audit"),
    (DeadPcProcess, "pc-audit"),
    (PcFreeStateProcess, "pc-audit"),
)

#: Mutants that deliberately own a *trusted* symmetry-hook bundle.  The
#: runtime differential suites assert that every other mutant degrades
#: :func:`repro.runtime.canonical.build_canonicalizer` to the trivial
#: canonicalizer; a hooked mutant cannot — its lying bundle is exactly
#: what the footprint pass's ``hook-coupling`` rule exists to reject
#: before exploration ever runs.
HOOKED_MUTANTS = (HookDriftProcess,)


class MutantAlgorithm(Algorithm):
    """Wrap one mutant automaton class as a runnable one-register system."""

    def __init__(self, automaton_cls: type, registers: int = 3):
        self.automaton_cls = automaton_cls
        self.registers = registers
        self.name = f"mutant({automaton_cls.__name__})"

    def register_count(self) -> int:
        return self.registers

    def automaton_for(self, pid: ProcessId, input: Any = None) -> ProcessAutomaton:
        return self.automaton_cls(pid)
