"""Property-style tests for the vector-clock race analysis.

The race sanitizer's soundness claims are universally quantified
("*every* guarded stream is clean", "*any* pair of unordered conflicting
accesses races"), so they are tested as properties over seeded synthetic
access streams rather than a handful of examples.
"""

from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.findings import errors_in
from repro.lint.races import AccessEvent, analyze_events

THREADS = (101, 103, 107)
REGISTERS = (0, 1, 2)


def _stream(entries) -> List[AccessEvent]:
    """(thread, register, kind, guarded) tuples -> ordered events."""
    return [
        AccessEvent(seq, f"proc-{thread}", thread, register, kind, guarded)
        for seq, (thread, register, kind, guarded) in enumerate(entries)
    ]


accesses = st.tuples(
    st.sampled_from(THREADS),
    st.sampled_from(REGISTERS),
    st.sampled_from(("read", "write")),
)


class TestGuardedStreamsAreClean:
    @given(st.lists(accesses, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_any_fully_guarded_interleaving_is_clean(self, entries):
        events = _stream([(t, r, k, True) for t, r, k in entries])
        assert analyze_events(events, "synthetic") == []


class TestSingleThreadStreamsAreClean:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(REGISTERS),
                st.sampled_from(("read", "write")),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_one_thread_never_races_with_itself(self, entries):
        events = _stream([(101, r, k, g) for r, k, g in entries])
        assert analyze_events(events, "synthetic") == []


#: Guarded noise by a thread distinct from the conflicting pair — it
#: can never order the unguarded writers (they acquire no locks).
noise = st.tuples(
    st.just(109),
    st.sampled_from((1, 2)),
    st.sampled_from(("read", "write")),
    st.just(True),
)


class TestUnguardedConflictsAreFlagged:
    @given(st.lists(noise, max_size=10), st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_two_unguarded_writes_race_through_any_noise(
        self, padding, cut_a, cut_b
    ):
        entries = list(padding)
        entries.insert(min(cut_a, len(entries)), (101, 0, "write", False))
        entries.insert(min(cut_b, len(entries)), (103, 0, "write", False))
        findings = errors_in(analyze_events(_stream(entries), "synthetic"))
        rules = {f.rule for f in findings}
        assert "lock-discipline" in rules
        assert "data-race" in rules

    @given(st.lists(noise, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_torn_rmw_survives_guarded_noise(self, padding):
        core = [
            (101, 0, "read", False),
            (103, 0, "write", False),
            (101, 0, "write", False),
        ]
        # Interleave the noise before the torn triple: the analysis keys
        # torn-RMW on (thread, register), so unrelated guarded traffic on
        # other registers must not mask it.
        entries = list(padding) + core
        findings = errors_in(analyze_events(_stream(entries), "synthetic"))
        assert any(f.rule == "torn-rmw" for f in findings)
        assert any("torn read-modify-write" in f.detail for f in findings)


class TestFindingStability:
    @given(st.lists(accesses, max_size=30), st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_analysis_is_deterministic(self, entries, guarded):
        events = _stream([(t, r, k, guarded) for t, r, k in entries])
        first = analyze_events(events, "synthetic")
        second = analyze_events(events, "synthetic")
        assert first == second
