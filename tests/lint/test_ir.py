"""Unit tests for the dataflow IR underneath the static lint passes."""

import inspect
from dataclasses import dataclass, replace
from typing import Any

import pytest

from repro.lint.ir import (
    BOTTOM,
    PID_VAL,
    AbsVal,
    analyze_class,
    class_source_tree,
    join,
    taint_violations,
)
from repro.lint.taint import check_class as taint_check
from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId


@dataclass(frozen=True)
class CounterState:
    pc: str = "loop"
    tries: int = 0
    best: Any = None


class BoundedCounterProcess(ProcessAutomaton):
    """Counts attempts, but a comparison witnesses the bound."""

    PC_LINES = {"loop": "test — retry loop", "done": "test — halted"}

    def __init__(self, pid: ProcessId, limit: int = 3):
        self.pid = pid
        self.limit = limit

    def initial_state(self) -> CounterState:
        return CounterState()

    def is_halted(self, state: CounterState) -> bool:
        return state.pc == "done"

    def output(self, state: CounterState) -> Any:
        return state.best if state.pc == "done" else None

    def next_op(self, state: CounterState) -> Operation:
        if state.tries >= self.limit:  # the witness: tries is bounded
            return ReadOp(0)
        return WriteOp(0, state.tries)

    def apply(self, state: CounterState, op: Operation, result: Any) -> CounterState:
        if state.tries >= self.limit:
            return replace(state, pc="done", best=result)
        return replace(state, tries=state.tries + 1)


class TestAbsValDomain:
    def test_join_takes_worst_taint(self):
        tainted = join(BOTTOM, PID_VAL)
        assert tainted.taint == "direct"
        assert "pid" in tainted.kinds

    def test_join_unions_kinds_and_consts(self):
        a = AbsVal(kinds=frozenset({"const"}), consts=(1,))
        b = AbsVal(kinds=frozenset({"config"}), consts=(2,))
        joined = join(a, b)
        assert joined.kinds == {"const", "config"}
        assert set(joined.consts) == {1, 2}

    def test_join_role_bottom_is_identity(self):
        automaton = AbsVal(role="automaton")
        assert join(BOTTOM, automaton).role == "automaton"
        assert join(automaton, BOTTOM).role == "automaton"

    def test_join_conflicting_roles_collapse(self):
        assert join(AbsVal(role="state"), AbsVal(role="automaton")).role == ""


class TestAnalysis:
    def test_witnessed_counter_is_not_unbounded(self):
        analysis = analyze_class(BoundedCounterProcess)
        assert analysis is not None
        writes = [s for s in analysis.op_sites if s.kind == "write"]
        assert writes
        assert all("unbounded" not in s.value.kinds for s in writes)
        assert analysis.footprint().writes_counter

    def test_footprint_of_counter_process(self):
        footprint = analyze_class(BoundedCounterProcess).footprint()
        assert not footprint.writes_pid
        assert not footprint.symbolic_indexing
        assert footprint.index_constants == (0,)

    def test_clean_class_has_no_taint_violations(self):
        assert taint_violations(BoundedCounterProcess) == []


class TestSourceDegradation:
    """Satellite (b): lint must degrade, not crash, without clean source."""

    def test_exec_defined_class_yields_none_tree(self):
        namespace = {}
        exec(
            "class Ghost:\n    def next_op(self, state):\n        return None\n",
            namespace,
        )
        assert class_source_tree(namespace["Ghost"]) is None

    def test_garbage_source_yields_none_tree(self, monkeypatch):
        # inspect returning an un-dedentable fragment used to raise
        # IndentationError out of the lint run.
        monkeypatch.setattr(
            inspect, "getsourcelines", lambda obj: (["    if x:\n"], 1)
        )
        assert class_source_tree(BoundedCounterProcess) is None

    def test_taint_pass_reports_skip_for_sourceless_class(self, monkeypatch):
        monkeypatch.setattr(
            inspect, "getsourcelines", lambda obj: (["@@@ not python"], 1)
        )
        (finding,) = taint_check(BoundedCounterProcess)
        assert finding.severity == "info"
        assert finding.rule == "skipped"
        assert "source unavailable" in finding.detail

    def test_footprint_pass_reports_skip_for_sourceless_class(self, monkeypatch):
        from repro.lint.footprints import check_class as footprints_check

        monkeypatch.setattr(
            inspect, "getsourcelines", lambda obj: (["@@@ not python"], 1)
        )
        (finding,) = footprints_check(BoundedCounterProcess)
        assert finding.severity == "info"
        assert finding.rule == "skipped"

    def test_analyze_class_returns_none_without_source(self, monkeypatch):
        monkeypatch.setattr(
            inspect,
            "getsourcelines",
            lambda obj: (_ for _ in ()).throw(OSError("no source")),
        )
        assert analyze_class(BoundedCounterProcess) is None


class TestMethodSummaries:
    def test_pid_survives_helper_roundtrip(self):
        class LaunderViaHelper(ProcessAutomaton):
            PC_LINES = {"s": "test"}

            def __init__(self, pid):
                self.pid = pid

            def _pick(self):
                chosen = self.pid
                return chosen

            def initial_state(self):
                return CounterState(pc="s")

            def is_halted(self, state):
                return False

            def output(self, state):
                return None

            def next_op(self, state):
                return ReadOp(self._pick())  # pid via helper return

            def apply(self, state, op, result):
                return state

        violations = taint_violations(LaunderViaHelper)
        assert violations is not None
        assert any("ReadOp register index" in v.detail for v in violations)

    def test_pid_via_module_level_helper_is_flagged(self):
        violations = taint_violations(HelperLaunderProcess)
        assert violations is not None
        assert any("register index" in v.detail for v in violations)


class HelperLaunderProcess(ProcessAutomaton):
    """Module-level: pid flows through a helper method into ReadOp."""

    PC_LINES = {"s": "test"}

    def __init__(self, pid: ProcessId):
        self.pid = pid

    def _pick(self) -> Any:
        chosen = self.pid
        return chosen

    def initial_state(self) -> CounterState:
        return CounterState(pc="s")

    def is_halted(self, state: CounterState) -> bool:
        return False

    def output(self, state: CounterState) -> Any:
        return None

    def next_op(self, state: CounterState) -> Operation:
        return ReadOp(self._pick())

    def apply(self, state: CounterState, op: Operation, result: Any) -> CounterState:
        return state


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
