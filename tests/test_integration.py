"""End-to-end integration tests: fast versions of every experiment.

Each test here is a miniature of one EXPERIMENTS.md entry, so the core
reproduction claims are re-checked on every ``pytest tests/`` run, not
only when the benchmark harness is invoked.
"""

import pytest

from repro import (
    AnonymousConsensus,
    AnonymousElection,
    AnonymousMutex,
    AnonymousRenaming,
    RandomNaming,
    System,
    elected_leader,
    explore,
)
from repro.baselines import (
    ElectionChainRenaming,
    NamedConsensus,
    PaddedAlgorithm,
    PetersonMutex,
    TournamentMutex,
)
from repro.lowerbounds import (
    NaiveTestAndSetLock,
    demonstrate_consensus_space_bound,
    demonstrate_mutex_impossibility,
    demonstrate_renaming_space_bound,
    run_symmetry_attack,
)
from repro.runtime import RandomAdversary, StagedObstructionAdversary
from repro.runtime.exploration import mutual_exclusion_invariant
from repro.spec import (
    check_all,
    consensus_checkers,
    mutex_checkers,
    renaming_checkers,
)

from tests.conftest import pids


class TestPossibilityResults:
    """The paper's algorithms do what the theorems say."""

    def test_e1_fig1_mutex_odd_m(self):
        system = System(
            AnonymousMutex(m=5, cs_visits=2, cs_steps=2),
            pids(2),
            naming=RandomNaming(7),
        )
        trace = system.run(RandomAdversary(11), max_steps=200_000)
        check_all(trace, mutex_checkers(5, min_entries=4))

    def test_e1_exhaustive_m3(self):
        system = System(AnonymousMutex(m=3), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant)
        assert result.complete and result.ok and result.stuck_states == 0

    def test_e3_e4_fig2_consensus(self):
        inputs = dict(zip(pids(3), ("x", "y", "z")))
        system = System(AnonymousConsensus(n=3), inputs, naming=RandomNaming(2))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=60, seed=4), max_steps=300_000
        )
        check_all(trace, consensus_checkers(inputs))

    def test_e5_election(self):
        system = System(AnonymousElection(n=3), pids(3))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=40, seed=1), max_steps=300_000
        )
        assert elected_leader(trace.outputs) in pids(3)

    def test_e6_e7_e8_fig3_renaming_adaptive(self):
        # Full house.
        system = System(AnonymousRenaming(n=4), pids(4), naming=RandomNaming(3))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=80, seed=2), max_steps=10**6
        )
        check_all(trace, renaming_checkers(4))
        assert sorted(trace.outputs.values()) == [1, 2, 3, 4]
        # Adaptivity: 2 of 4.
        system = System(AnonymousRenaming(n=4), pids(2))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=30, seed=5), max_steps=10**6
        )
        assert sorted(trace.outputs.values()) == [1, 2]


class TestImpossibilityResults:
    """The paper's attacks break every candidate in the forbidden regime."""

    @pytest.mark.parametrize("m", [2, 4, 6])
    def test_e1_e2_even_m_attack(self, m):
        result = run_symmetry_attack(
            AnonymousMutex(m=m, unsafe_allow_any_m=True), pids(2)
        )
        assert result.violated and result.symmetric_throughout

    def test_e9_mutex_covering(self):
        report = demonstrate_mutex_impossibility(lambda: NaiveTestAndSetLock())
        assert report.branch == "rho-violation"
        report = demonstrate_mutex_impossibility(lambda: AnonymousMutex(m=3))
        assert report.branch == "z-no-progress"

    def test_e10_consensus_space(self):
        report = demonstrate_consensus_space_bound(
            lambda: AnonymousConsensus(n=3, registers=2)
        )
        assert report.branch == "rho-violation"
        assert report.indistinguishability_verified

    def test_e11_renaming_space(self):
        report = demonstrate_renaming_space_bound(
            lambda: AnonymousRenaming(n=3, registers=2)
        )
        assert report.branch == "rho-violation"
        assert report.q_outcome == 1 and 1 in report.p_outcomes.values()


class TestModelSeparation:
    """E12: the named model really is stronger (Theorem 6.1's content)."""

    def test_named_model_pads_where_anonymous_cannot(self):
        # Even m = 4 total registers: fine with names (padding), fatal
        # without (Theorem 3.1).
        system = System(PaddedAlgorithm(AnonymousMutex(m=3, cs_visits=1), 4), pids(2))
        trace = system.run(RandomAdversary(1), max_steps=200_000)
        assert trace.stop_reason == "all-halted"
        attack = run_symmetry_attack(
            AnonymousMutex(m=4, unsafe_allow_any_m=True), pids(2)
        )
        assert attack.violated

    def test_named_model_scales_mutex_beyond_two(self):
        system = System(TournamentMutex(n=4, cs_visits=1), pids(4))
        trace = system.run(RandomAdversary(2), max_steps=10**6)
        check_all(trace, mutex_checkers(9, min_entries=4))

    def test_named_and_anonymous_agree_on_what_consensus_is(self):
        inputs = dict(zip(pids(3), ("x", "y", "z")))
        for algorithm in (AnonymousConsensus(n=3), NamedConsensus(n=3)):
            system = System(algorithm, inputs)
            trace = system.run(
                StagedObstructionAdversary(prefix_steps=50, seed=3),
                max_steps=300_000,
            )
            check_all(trace, consensus_checkers(inputs))

    def test_renaming_space_premium_of_the_named_chain(self):
        assert ElectionChainRenaming(n=4).register_count() == 21
        assert AnonymousRenaming(n=4).register_count() == 7

    def test_e13_plasticity_outcomes_stable_across_namings(self):
        inputs = dict(zip(pids(3), ("x", "y", "z")))
        for seed in range(3):
            system = System(
                AnonymousConsensus(n=3), inputs, naming=RandomNaming(seed)
            )
            trace = system.run(
                StagedObstructionAdversary(prefix_steps=40, seed=9),
                max_steps=300_000,
            )
            check_all(trace, consensus_checkers(inputs))


class TestPublicApi:
    def test_top_level_exports_are_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_is_set(self):
        import repro

        assert repro.__version__
