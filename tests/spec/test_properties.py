"""Tests for the property-checker framework."""

import pytest

from repro.errors import SpecViolation
from repro.runtime.events import Trace
from repro.spec.properties import (
    PropertyChecker,
    check_all,
    first_violation,
    violations,
)

from tests.conftest import pids


class AlwaysPass(PropertyChecker):
    name = "always-pass"

    def check(self, trace):
        return None


class AlwaysFail(PropertyChecker):
    name = "always-fail"

    def check(self, trace):
        raise SpecViolation("nope", trace=trace)


def empty_trace():
    return Trace(pids=pids(2), register_count=1, initial_values=(0,))


class TestFramework:
    def test_check_all_passes_quietly(self):
        check_all(empty_trace(), [AlwaysPass(), AlwaysPass()])

    def test_check_all_raises_first_failure(self):
        with pytest.raises(SpecViolation):
            check_all(empty_trace(), [AlwaysPass(), AlwaysFail()])

    def test_violations_collects_without_raising(self):
        found = violations(empty_trace(), [AlwaysFail(), AlwaysFail(), AlwaysPass()])
        assert len(found) == 2

    def test_first_violation_returns_none_when_clean(self):
        assert first_violation(empty_trace(), [AlwaysPass()]) is None

    def test_first_violation_returns_the_exception(self):
        violation = first_violation(empty_trace(), [AlwaysFail()])
        assert isinstance(violation, SpecViolation)
        assert violation.trace is not None

    def test_holds_boolean_form(self):
        assert AlwaysPass().holds(empty_trace())
        assert not AlwaysFail().holds(empty_trace())

    def test_describe_defaults_to_name(self):
        assert AlwaysPass().describe() == "always-pass"

    def test_violation_carries_trace(self):
        trace = empty_trace()
        try:
            AlwaysFail().check(trace)
        except SpecViolation as exc:
            assert exc.trace is trace
