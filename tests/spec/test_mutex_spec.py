"""Tests for the mutual-exclusion spec checkers — including that they
actually *fire* on bad traces (checker sensitivity)."""

import pytest

from repro.errors import DeadlockFreedomViolation, MutualExclusionViolation
from repro.runtime.events import Event, Trace
from repro.runtime.ops import EnterCritOp, ExitCritOp, ReadOp, WriteOp
from repro.spec.mutex_spec import (
    DeadlockFreedomChecker,
    ExitWaitFreeChecker,
    MutualExclusionChecker,
    mutex_checkers,
)

from tests.conftest import pids


def trace_of(events, stop_reason="max-steps", outputs=None):
    trace = Trace(pids=pids(2), register_count=3, initial_values=(0, 0, 0))
    for event in events:
        trace.append(event)
    trace.stop_reason = stop_reason
    if outputs:
        trace.outputs.update(outputs)
        for pid in outputs:
            trace.halt_seq[pid] = len(trace.events) - 1
    return trace


class TestMutualExclusionChecker:
    def test_passes_on_disjoint_intervals(self):
        p1, p2 = pids(2)
        trace = trace_of(
            [
                Event(0, p1, EnterCritOp()),
                Event(1, p1, ExitCritOp()),
                Event(2, p2, EnterCritOp()),
                Event(3, p2, ExitCritOp()),
            ]
        )
        MutualExclusionChecker().check(trace)

    def test_fires_on_overlap(self):
        p1, p2 = pids(2)
        trace = trace_of(
            [
                Event(0, p1, EnterCritOp()),
                Event(1, p2, EnterCritOp()),
                Event(2, p1, ExitCritOp()),
                Event(3, p2, ExitCritOp()),
            ]
        )
        with pytest.raises(MutualExclusionViolation):
            MutualExclusionChecker().check(trace)

    def test_fires_on_open_interval_overlap(self):
        p1, p2 = pids(2)
        trace = trace_of(
            [Event(0, p1, EnterCritOp()), Event(1, p2, EnterCritOp())]
        )
        with pytest.raises(MutualExclusionViolation):
            MutualExclusionChecker().check(trace)

    def test_same_process_reentry_is_fine(self):
        p1, _ = pids(2)
        trace = trace_of(
            [
                Event(0, p1, EnterCritOp()),
                Event(1, p1, ExitCritOp()),
                Event(2, p1, EnterCritOp()),
                Event(3, p1, ExitCritOp()),
            ]
        )
        MutualExclusionChecker().check(trace)

    def test_holds_is_boolean_form(self):
        p1, p2 = pids(2)
        bad = trace_of(
            [Event(0, p1, EnterCritOp()), Event(1, p2, EnterCritOp())]
        )
        assert not MutualExclusionChecker().holds(bad)


class TestDeadlockFreedomChecker:
    def test_passes_on_completed_run_with_outputs(self):
        p1, p2 = pids(2)
        trace = trace_of(
            [Event(0, p1, EnterCritOp())],
            stop_reason="all-halted",
            outputs={p1: 1, p2: 1},
        )
        DeadlockFreedomChecker().check(trace)

    def test_fires_on_completed_run_with_zero_visits(self):
        p1, p2 = pids(2)
        trace = trace_of(
            [Event(0, p1, EnterCritOp())],
            stop_reason="all-halted",
            outputs={p1: 1, p2: 0},
        )
        with pytest.raises(DeadlockFreedomViolation):
            DeadlockFreedomChecker().check(trace)

    def test_fires_on_starving_truncated_run(self):
        p1, _ = pids(2)
        trace = trace_of([Event(k, p1, ReadOp(0), 0, 0) for k in range(50)])
        with pytest.raises(DeadlockFreedomViolation):
            DeadlockFreedomChecker(min_entries=1).check(trace)

    def test_passes_when_entries_meet_minimum(self):
        p1, _ = pids(2)
        trace = trace_of(
            [Event(0, p1, EnterCritOp()), Event(1, p1, ExitCritOp())]
        )
        DeadlockFreedomChecker(min_entries=1).check(trace)


class TestExitWaitFreeChecker:
    def test_passes_on_write_only_exit(self):
        p1, _ = pids(2)
        trace = trace_of(
            [
                Event(0, p1, ExitCritOp(), phase="critical"),
                Event(1, p1, WriteOp(0, 0), 0, phase="exit"),
                Event(2, p1, WriteOp(1, 0), 1, phase="exit"),
            ]
        )
        ExitWaitFreeChecker(max_exit_steps=3).check(trace)

    def test_fires_on_read_during_exit(self):
        p1, _ = pids(2)
        trace = trace_of(
            [Event(0, p1, ReadOp(0), 0, 0, phase="exit")]
        )
        with pytest.raises(DeadlockFreedomViolation):
            ExitWaitFreeChecker(max_exit_steps=3).check(trace)

    def test_fires_on_overlong_exit(self):
        p1, _ = pids(2)
        trace = trace_of(
            [Event(k, p1, WriteOp(0, 0), 0, phase="exit") for k in range(5)]
        )
        with pytest.raises(DeadlockFreedomViolation):
            ExitWaitFreeChecker(max_exit_steps=3).check(trace)

    def test_entry_reads_are_not_confused_with_exit(self):
        p1, _ = pids(2)
        trace = trace_of(
            [
                Event(0, p1, WriteOp(0, 0), 0, phase="exit"),
                Event(1, p1, ReadOp(0), 0, 0, phase="entry"),
            ]
        )
        ExitWaitFreeChecker(max_exit_steps=1).check(trace)


class TestBattery:
    def test_mutex_checkers_builds_three(self):
        checkers = mutex_checkers(5)
        names = {c.name for c in checkers}
        assert names == {"mutual-exclusion", "deadlock-freedom", "exit-wait-free"}
