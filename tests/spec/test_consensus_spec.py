"""Tests for the consensus/election spec checkers (including sensitivity)."""

import pytest

from repro.errors import (
    AgreementViolation,
    TerminationViolation,
    ValidityViolation,
)
from repro.runtime.events import Event, Trace
from repro.runtime.ops import ReadOp, WriteOp
from repro.spec.consensus_spec import (
    AgreementChecker,
    ElectionChecker,
    ObstructionFreeTerminationChecker,
    SoloStepBoundChecker,
    ValidityChecker,
    consensus_checkers,
)

from tests.conftest import pids


def trace_with_outputs(outputs, crash=(), n=3, events=()):
    trace = Trace(pids=pids(n), register_count=5, initial_values=(0,) * 5)
    for event in events:
        trace.append(event)
    for pid, value in outputs.items():
        trace.outputs[pid] = value
        trace.halt_seq[pid] = 0
    for pid in crash:
        trace.crash_seq[pid] = 0
    trace.stop_reason = "all-halted"
    return trace


class TestAgreementChecker:
    def test_passes_on_unanimous(self):
        AgreementChecker().check(trace_with_outputs({101: "v", 103: "v"}))

    def test_passes_on_partial_decisions(self):
        AgreementChecker().check(trace_with_outputs({101: "v"}))

    def test_fires_on_conflict(self):
        with pytest.raises(AgreementViolation):
            AgreementChecker().check(trace_with_outputs({101: "a", 103: "b"}))

    def test_passes_on_empty(self):
        AgreementChecker().check(trace_with_outputs({}))


class TestValidityChecker:
    def test_passes_when_decision_is_an_input(self):
        inputs = {101: "a", 103: "b", 107: "c"}
        ValidityChecker(inputs).check(trace_with_outputs({101: "b"}))

    def test_fires_on_invented_value(self):
        inputs = {101: "a", 103: "b", 107: "c"}
        with pytest.raises(ValidityViolation):
            ValidityChecker(inputs).check(trace_with_outputs({101: "z"}))


class TestElectionChecker:
    def test_passes_on_unanimous_participant(self):
        ElectionChecker().check(trace_with_outputs({101: 103, 103: 103}))

    def test_fires_on_non_participant_leader(self):
        with pytest.raises(ValidityViolation):
            ElectionChecker().check(trace_with_outputs({101: 999}))

    def test_fires_on_split_vote(self):
        with pytest.raises(AgreementViolation):
            ElectionChecker().check(trace_with_outputs({101: 101, 103: 103}))


class TestTerminationCheckers:
    def test_of_termination_passes_when_all_halted(self):
        ObstructionFreeTerminationChecker().check(
            trace_with_outputs({101: "v", 103: "v", 107: "v"})
        )

    def test_of_termination_ignores_crashed(self):
        ObstructionFreeTerminationChecker().check(
            trace_with_outputs({101: "v", 103: "v"}, crash=(107,))
        )

    def test_of_termination_fires_on_stragglers(self):
        with pytest.raises(TerminationViolation):
            ObstructionFreeTerminationChecker().check(
                trace_with_outputs({101: "v"})
            )

    def test_solo_bound_passes_within_budget(self):
        p1 = pids(1)[0]
        events = [Event(k, p1, ReadOp(0), 0, 0) for k in range(5)]
        trace = trace_with_outputs({p1: "v"}, n=1, events=events)
        SoloStepBoundChecker(max_steps=10).check(trace)

    def test_solo_bound_fires_when_exceeded(self):
        p1 = pids(1)[0]
        events = [Event(k, p1, ReadOp(0), 0, 0) for k in range(20)]
        trace = trace_with_outputs({p1: "v"}, n=1, events=events)
        with pytest.raises(TerminationViolation):
            SoloStepBoundChecker(max_steps=10).check(trace)

    def test_solo_bound_fires_when_undecided(self):
        p1 = pids(1)[0]
        events = [Event(0, p1, ReadOp(0), 0, 0)]
        trace = Trace(pids=pids(1), register_count=1, initial_values=(0,))
        for e in events:
            trace.append(e)
        with pytest.raises(TerminationViolation):
            SoloStepBoundChecker(max_steps=10).check(trace)

    def test_solo_bound_demands_single_stepper_when_pid_unset(self):
        p1, p2 = pids(2)
        trace = Trace(pids=pids(2), register_count=1, initial_values=(0,))
        trace.append(Event(0, p1, ReadOp(0), 0, 0))
        trace.append(Event(1, p2, ReadOp(0), 0, 0))
        with pytest.raises(TerminationViolation):
            SoloStepBoundChecker(max_steps=10).check(trace)


class TestBattery:
    def test_consensus_checkers_builds_three(self):
        checkers = consensus_checkers({101: "a"})
        assert {c.name for c in checkers} == {
            "agreement",
            "validity",
            "of-termination",
        }
