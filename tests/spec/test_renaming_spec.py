"""Tests for the renaming spec checkers (including sensitivity)."""

import pytest

from repro.errors import (
    NameRangeViolation,
    TerminationViolation,
    UniquenessViolation,
)
from repro.runtime.events import Trace
from repro.spec.renaming_spec import (
    NameRangeChecker,
    RenamingTerminationChecker,
    UniqueNamesChecker,
    renaming_checkers,
)

from tests.conftest import pids


def trace_with_names(names, crash=(), n=3):
    trace = Trace(pids=pids(n), register_count=5, initial_values=(0,) * 5)
    for pid, name in names.items():
        trace.outputs[pid] = name
        trace.halt_seq[pid] = 0
    for pid in crash:
        trace.crash_seq[pid] = 0
    trace.stop_reason = "all-halted"
    return trace


class TestUniqueNamesChecker:
    def test_passes_on_distinct_names(self):
        UniqueNamesChecker().check(trace_with_names({101: 1, 103: 2, 107: 3}))

    def test_fires_on_duplicates(self):
        with pytest.raises(UniquenessViolation):
            UniqueNamesChecker().check(trace_with_names({101: 1, 103: 1}))

    def test_passes_on_partial_outputs(self):
        UniqueNamesChecker().check(trace_with_names({101: 2}))


class TestNameRangeChecker:
    def test_passes_within_bound(self):
        NameRangeChecker(bound=3).check(trace_with_names({101: 3}))

    def test_fires_above_bound(self):
        with pytest.raises(NameRangeViolation):
            NameRangeChecker(bound=2).check(trace_with_names({101: 3}))

    def test_fires_on_zero_or_negative(self):
        with pytest.raises(NameRangeViolation):
            NameRangeChecker(bound=3).check(trace_with_names({101: 0}))

    def test_fires_on_non_integer(self):
        with pytest.raises(NameRangeViolation):
            NameRangeChecker(bound=3).check(trace_with_names({101: "one"}))

    def test_adaptivity_usage_with_k_bound(self):
        # Theorem 5.3 style: 2 participants => names within {1, 2}.
        NameRangeChecker(bound=2).check(trace_with_names({101: 1, 103: 2}, n=2))
        with pytest.raises(NameRangeViolation):
            NameRangeChecker(bound=2).check(
                trace_with_names({101: 1, 103: 3}, n=2)
            )


class TestRenamingTerminationChecker:
    def test_passes_when_everyone_named(self):
        RenamingTerminationChecker().check(
            trace_with_names({101: 1, 103: 2, 107: 3})
        )

    def test_ignores_crashed(self):
        RenamingTerminationChecker().check(
            trace_with_names({101: 1, 103: 2}, crash=(107,))
        )

    def test_fires_on_unnamed_live_process(self):
        with pytest.raises(TerminationViolation):
            RenamingTerminationChecker().check(trace_with_names({101: 1}))


class TestBattery:
    def test_renaming_checkers_builds_three(self):
        checkers = renaming_checkers(3)
        assert {c.name for c in checkers} == {
            "unique-names",
            "name-range",
            "renaming-termination",
        }
