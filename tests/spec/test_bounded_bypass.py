"""Tests for the bounded-bypass (starvation-freedom) checker."""

import pytest

from repro.baselines.named_mutex import PetersonMutex
from repro.core.mutex import AnonymousMutex
from repro.errors import DeadlockFreedomViolation
from repro.runtime.adversary import AlternatingBurstAdversary, RandomAdversary
from repro.runtime.events import Event, Trace
from repro.runtime.ops import EnterCritOp, ExitCritOp, ReadOp
from repro.runtime.system import System
from repro.spec.mutex_spec import BoundedBypassChecker

from tests.conftest import pids


def synthetic_trace(events):
    trace = Trace(pids=pids(2), register_count=3, initial_values=(0, 0, 0))
    for event in events:
        trace.append(event)
    return trace


class TestMaxBypass:
    def test_no_waiting_no_bypass(self):
        p1, _ = pids(2)
        trace = synthetic_trace(
            [Event(0, p1, EnterCritOp()), Event(1, p1, ExitCritOp())]
        )
        assert BoundedBypassChecker(0).max_bypass(trace) == (0, None)

    def test_single_bypass_counted(self):
        p1, p2 = pids(2)
        trace = synthetic_trace(
            [
                Event(0, p2, ReadOp(0), 0, 0, phase="entry"),  # p2 waits
                Event(1, p1, EnterCritOp(), phase="entry"),    # p1 overtakes
                Event(2, p1, ExitCritOp()),
                Event(3, p2, EnterCritOp(), phase="entry"),
            ]
        )
        assert BoundedBypassChecker(1).max_bypass(trace) == (1, p2)

    def test_repeated_bypass_accumulates(self):
        p1, p2 = pids(2)
        events = [Event(0, p2, ReadOp(0), 0, 0, phase="entry")]
        seq = 1
        for _ in range(3):
            events.append(Event(seq, p1, EnterCritOp(), phase="entry")); seq += 1
            events.append(Event(seq, p1, ExitCritOp())); seq += 1
        trace = synthetic_trace(events)
        assert BoundedBypassChecker(9).max_bypass(trace) == (3, p2)

    def test_own_entry_resets_counter(self):
        p1, p2 = pids(2)
        trace = synthetic_trace(
            [
                Event(0, p2, ReadOp(0), 0, 0, phase="entry"),
                Event(1, p1, EnterCritOp(), phase="entry"),
                Event(2, p1, ExitCritOp()),
                Event(3, p2, EnterCritOp(), phase="entry"),
                Event(4, p2, ExitCritOp()),
                Event(5, p2, ReadOp(0), 0, 0, phase="entry"),
                Event(6, p1, EnterCritOp(), phase="entry"),
            ]
        )
        # Two separate waits, one bypass each: max is 1, not 2.
        assert BoundedBypassChecker(1).max_bypass(trace)[0] == 1

    def test_check_raises_beyond_bound(self):
        p1, p2 = pids(2)
        events = [Event(0, p2, ReadOp(0), 0, 0, phase="entry")]
        seq = 1
        for _ in range(2):
            events.append(Event(seq, p1, EnterCritOp(), phase="entry")); seq += 1
            events.append(Event(seq, p1, ExitCritOp())); seq += 1
        with pytest.raises(DeadlockFreedomViolation):
            BoundedBypassChecker(bound=1).check(synthetic_trace(events))


class TestOnRealAlgorithms:
    def test_peterson_is_one_bounded(self):
        # Peterson's turn-taking gives starvation-freedom with bypass 1.
        checker = BoundedBypassChecker(bound=1)
        for seed in range(10):
            system = System(PetersonMutex(cs_visits=4), pids(2))
            trace = system.run(RandomAdversary(seed), max_steps=100_000)
            checker.check(trace)

    def test_fig1_exceeds_any_small_bound_under_bursts(self):
        # Figure 1 is deadlock-free but NOT starvation-free: bursty
        # schedules let one process win repeatedly (§8 lists anonymous
        # starvation-free mutex as open).
        checker = BoundedBypassChecker(bound=1)
        worst = 0
        for seed in range(20):
            system = System(AnonymousMutex(m=3, cs_visits=5), pids(2))
            trace = system.run(
                AlternatingBurstAdversary(seed=seed, max_burst=12),
                max_steps=100_000,
            )
            worst = max(worst, checker.max_bypass(trace)[0])
        assert worst >= 3
