"""The problem registry as single source of truth.

Every consumer (lint, verify, bench, sweep) projects its view from
:mod:`repro.problems.registry`; these tests pin the registry's own
coherence and — via the drift test — that its declared automaton classes
never fall out of sync with what the shipped modules actually define.
"""

import importlib
import inspect

import pytest

from repro.errors import ConfigurationError
from repro.memory.naming import RingNaming
from repro.problems import (
    ProblemInstance,
    ProblemSpec,
    get_problem,
    instances_with_role,
    problem_specs,
)
from repro.problems.registry import shipped_automaton_classes, shipped_modules
from repro.problems.spec import LIVENESS_KINDS, ROLES, LivenessProperty
from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.system import System


class TestRegistryCoherence:
    def test_keys_are_unique(self):
        keys = [spec.key for spec in problem_specs(include_mutants=True)]
        assert len(set(keys)) == len(keys)

    def test_instance_labels_are_globally_unique(self):
        labels = [
            inst.label
            for spec in problem_specs(include_mutants=True)
            for inst in spec.instances
        ]
        assert len(set(labels)) == len(labels)

    def test_bench_labels_are_unique_and_only_on_bench_instances(self):
        bench_labels = []
        for spec in problem_specs(include_mutants=True):
            for inst in spec.instances:
                if inst.has_role("bench"):
                    assert inst.bench_label, (
                        f"{inst.label} plays the bench role without a "
                        "bench_label (the BENCH_explore.json trajectory key)"
                    )
                    bench_labels.append(inst.bench_label)
        assert len(set(bench_labels)) == len(bench_labels)

    def test_every_role_is_known(self):
        for spec in problem_specs(include_mutants=True):
            for inst in spec.instances:
                assert set(inst.roles) <= set(ROLES)

    def test_liveness_declarations_need_checkable_kinds(self):
        from repro.verify import LIVENESS_CHECKERS

        assert set(LIVENESS_CHECKERS) == set(LIVENESS_KINDS)
        for spec in problem_specs(include_mutants=True):
            for prop in spec.liveness:
                assert prop.kind in LIVENESS_CHECKERS

    def test_verify_role_implies_an_invariant(self):
        # The verifier's exhaustive safety pass is meaningless without a
        # declared invariant; every verify-role instance must have one.
        for spec, inst in instances_with_role("verify", include_mutants=True):
            assert spec.invariant is not None, spec.key

    def test_mutants_are_excluded_from_shipped_views(self):
        shipped = {spec.key for spec in problem_specs()}
        everything = {spec.key for spec in problem_specs(include_mutants=True)}
        mutants = everything - shipped
        assert "figure-1-mutex-even-m" in mutants
        for key in mutants:
            assert get_problem(key).mutant

    def test_unknown_problem_key_lists_known_keys(self):
        with pytest.raises(KeyError, match="figure-1-mutex"):
            get_problem("no-such-problem")

    def test_unknown_instance_label_lists_known_labels(self):
        spec = get_problem("figure-1-mutex")
        with pytest.raises(KeyError, match=r"figure-1-mutex\(m=3\)"):
            spec.instance("no-such-instance")

    def test_unknown_role_and_kind_are_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="unknown role"):
            ProblemInstance("x", roles=("fuzz",))
        with pytest.raises(ValueError, match="unknown liveness kind"):
            LivenessProperty("starvation-freedom", "Theorem 0")


class TestSpecProjection:
    def test_system_builds_a_runnable_system(self):
        spec = get_problem("figure-1-mutex")
        inst = spec.instance("figure-1-mutex(m=3)")
        system = spec.system(inst)
        assert isinstance(system, System)

    def test_mutant_system_pins_its_adversarial_naming(self):
        spec = get_problem("figure-1-mutex-even-m")
        inst = spec.instance("figure-1-mutex-even-m(m=4)")
        naming = spec.naming(inst.params_dict())
        assert isinstance(naming, RingNaming)

    def test_algorithm_is_fresh_per_call(self):
        spec = get_problem("figure-2-consensus")
        inst = spec.instance("figure-2-consensus(n=2)")
        assert spec.algorithm(inst) is not spec.algorithm(inst)

    def test_params_dict_round_trips(self):
        inst = get_problem("figure-1-mutex").instance("figure-1-mutex(m=5)")
        assert inst.params_dict() == {"m": 5}

    def test_instances_with_role_filters(self):
        spec = get_problem("figure-1-mutex")
        verify = spec.instances_with_role("verify")
        assert [i.label for i in verify] == [
            "figure-1-mutex(m=3)",
            "figure-1-mutex(m=5)",
            "figure-1-mutex(m=7)",
        ]

    def test_sweep_problem_resolves_through_the_registry(self):
        from repro.analysis.experiments import sweep_problem
        from repro.memory.naming import IdentityNaming
        from repro.runtime.adversary import RandomAdversary
        from repro.spec.mutex_spec import MutualExclusionChecker

        from repro.request import RunRequest

        result = sweep_problem(
            "figure-1-mutex",
            namings=[IdentityNaming()],
            adversaries=[RandomAdversary(1)],
            checkers_factory=lambda: [MutualExclusionChecker()],
            request=RunRequest(max_steps=20_000),
        )
        assert result.runs == 1 and result.all_ok

    def test_sweep_problem_rejects_params_and_instance_together(self):
        from repro.analysis.experiments import sweep_problem

        with pytest.raises(ConfigurationError, match="not both"):
            sweep_problem(
                "figure-1-mutex",
                namings=[],
                adversaries=[],
                checkers_factory=lambda: [],
                instance="figure-1-mutex(m=3)",
                params={"m": 3},
            )


class TestDrift:
    """The registry's declared automata vs. the shipped modules' reality.

    ``repro lint``'s summary counts come from
    :func:`shipped_automaton_classes`; this walk fails the build if a
    shipped module ever gains (or loses) a concrete
    :class:`ProcessAutomaton` subclass the registry does not declare, so
    the counts can never silently drift again (the seed repo shipped a
    stale "14 automata" string for two releases).
    """

    @staticmethod
    def _walk(cls):
        for sub in cls.__subclasses__():
            yield sub
            yield from TestDrift._walk(sub)

    def test_registry_matches_the_subclass_walk(self):
        modules = shipped_modules()
        for module in modules:
            importlib.import_module(module)
        walked = {
            cls
            for cls in self._walk(ProcessAutomaton)
            if cls.__module__ in modules and not inspect.isabstract(cls)
        }
        declared = set(shipped_automaton_classes())
        missing = sorted(
            f"{c.__module__}.{c.__qualname__}" for c in walked - declared
        )
        stale = sorted(
            f"{c.__module__}.{c.__qualname__}" for c in declared - walked
        )
        assert not missing, f"shipped but undeclared automata: {missing}"
        assert not stale, f"declared but unshipped automata: {stale}"

    def test_lint_view_is_a_pure_projection(self):
        from repro.lint.registry import lint_targets

        targets = lint_targets()
        registry = list(instances_with_role("lint"))
        assert [t.label for t in targets] == [
            inst.label for _, inst in registry
        ]
        for target, (_, inst) in zip(targets, registry):
            assert target.max_states == inst.max_states
            assert target.race_check == inst.race_check
            assert target.naming_seed == inst.naming_seed

    def test_classes_are_sorted_like_the_old_subclass_walk(self):
        classes = shipped_automaton_classes()
        keys = [(c.__module__, c.__qualname__) for c in classes]
        assert keys == sorted(keys)
