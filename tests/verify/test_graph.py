"""State-graph retention: determinism, soundness gates, replayability.

The load-bearing claim is byte-identity: on complete runs the serial DFS
and the parallel BFS retain the *same* :class:`StateGraph` — same nodes,
same per-node edge order, identical :meth:`StateGraph.to_bytes` output —
for every shipped verify-role instance.  Everything downstream
(deadlock-freedom SCCs, solo-run chain walks, lasso schedules) inherits
its determinism from this.
"""

import pytest

from repro.errors import ConfigurationError
from repro.problems import get_problem, instances_with_role
from repro.runtime.backends import ParallelBackend, SerialBackend
from repro.runtime.exploration import explore
from repro.runtime.kernel import StepInstance, step_value
from repro.verify.graph import GraphRecorder, StateGraph


def _no_invariant(system):
    return None


def _explore_graph(spec, instance, backend):
    system = spec.system(instance)
    invariant = spec.invariant if spec.invariant is not None else _no_invariant
    result = explore(
        system,
        invariant,
        max_states=instance.verify_max_states,
        max_depth=instance.verify_max_states,
        backend=backend,
        retain_graph=True,
    )
    return system, result


VERIFY_INSTANCES = [
    pytest.param(spec, inst, id=inst.label)
    for spec, inst in instances_with_role("verify", include_mutants=True)
]


class TestBackendByteIdentity:
    @pytest.mark.parametrize("spec, instance", VERIFY_INSTANCES)
    def test_serial_and_parallel_graphs_are_byte_identical(
        self, spec, instance
    ):
        _, serial = _explore_graph(spec, instance, SerialBackend())
        _, parallel = _explore_graph(
            spec, instance, ParallelBackend(workers=2)
        )
        assert serial.graph is not None and parallel.graph is not None
        assert serial.complete and parallel.complete
        assert len(serial.graph) == serial.states_explored
        assert serial.graph.to_bytes() == parallel.graph.to_bytes()


class TestRetentionContract:
    def test_retain_graph_requires_the_trivial_canonicalizer(self):
        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        with pytest.raises(ConfigurationError, match="trivial canonicalizer"):
            explore(
                spec.system(instance),
                spec.invariant,
                reduction="symmetry",
                retain_graph=True,
            )

    def test_graph_is_absent_by_default(self):
        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        result = explore(spec.system(instance), spec.invariant)
        assert result.graph is None

    def test_truncated_walks_retain_an_incomplete_graph(self):
        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        result = explore(
            spec.system(instance),
            spec.invariant,
            max_states=50,
            retain_graph=True,
        )
        assert not result.complete
        assert result.graph is not None and not result.graph.complete

    def test_every_edge_replays_through_the_pure_kernel(self):
        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        system, result = _explore_graph(spec, instance, SerialBackend())
        graph = result.graph
        step = StepInstance.from_system(spec.system(instance))
        checked = 0
        for key in list(graph.iter_nodes())[:200]:
            src = graph.nodes[key]
            for pid, dst in graph.successors(key):
                assert step_value(step, src, pid) == graph.nodes[dst]
                checked += 1
        assert checked > 0

    def test_path_to_replays_to_the_target_state(self):
        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        _, result = _explore_graph(spec, instance, SerialBackend())
        graph = result.graph
        step = StepInstance.from_system(spec.system(instance))
        target = max(graph.nodes)  # arbitrary but deterministic
        schedule = graph.path_to(target)
        state = graph.nodes[graph.initial]
        for pid in schedule:
            state = step_value(step, state, pid)
        assert state == graph.nodes[target]

    def test_path_to_unreachable_node_raises(self):
        graph = StateGraph(
            initial=b"a" * 8,
            nodes={b"a" * 8: ((), ()), b"z" * 8: ((), ())},
            edges={b"a" * 8: ()},
            complete=False,
        )
        with pytest.raises(KeyError, match="not reachable"):
            graph.path_to(b"z" * 8)


class TestSerialisation:
    def _tiny(self, complete=True):
        a, b = b"a" * 8, b"b" * 8
        recorder = GraphRecorder(a, ((), ()))
        recorder.add_node(b, ((1,), ()))
        recorder.add_edge(a, 101, b)
        recorder.add_edge(a, 103, a)
        recorder.mark_expanded(b)
        return recorder.finish(complete=complete)

    def test_recorder_round_trip(self):
        graph = self._tiny()
        assert len(graph) == 2
        assert graph.edge_count == 2
        assert graph.successors(b"a" * 8) == ((101, b"b" * 8), (103, b"a" * 8))
        assert graph.successor_via(b"a" * 8, 103) == b"a" * 8
        assert graph.successor_via(b"b" * 8, 101) is None  # terminal

    def test_to_bytes_encodes_the_completeness_flag(self):
        assert (
            self._tiny(complete=True).to_bytes()
            != self._tiny(complete=False).to_bytes()
        )

    def test_to_bytes_is_stable_under_node_insertion_order(self):
        a, b = b"a" * 8, b"b" * 8
        first = GraphRecorder(a, ((), ()))
        first.add_node(b, ((1,), ()))
        first.add_edge(a, 101, b)
        first.mark_expanded(b)
        second = GraphRecorder(a, ((), ()))
        second.add_edge(a, 101, b)
        second.add_node(b, ((1,), ()))
        second.mark_expanded(b)
        assert (
            first.finish(complete=True).to_bytes()
            == second.finish(complete=True).to_bytes()
        )
