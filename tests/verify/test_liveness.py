"""Exhaustive liveness verification: theorems confirmed, mutants caught.

Positive direction: deadlock-freedom of the Figure 1 mutex (Theorem 3.3)
and obstruction-freedom of the Figure 2 consensus / Figure 3 renaming
(Theorems 4.1, 5.1) hold over the complete retained state graphs — no
adversary sampling anywhere.  Negative direction: the seeded even-``m``
mutex mutant (Theorem 3.4's forbidden regime) must *fail*
deadlock-freedom with a lasso counterexample that replays — both through
the pure kernel and through :func:`replay_schedule` on a fresh system.
"""

import pytest

from repro.errors import VerificationError
from repro.problems import get_problem
from repro.request import RunRequest
from repro.runtime.exploration import explore
from repro.runtime.kernel import StepInstance, step_value
from repro.runtime.replay import replay_schedule
from repro.verify import (
    check_deadlock_freedom,
    check_obstruction_freedom,
    verify_instance,
)


def _graph_and_step(key, label, **explore_kwargs):
    spec = get_problem(key)
    instance = spec.instance(label)
    system = spec.system(instance)
    result = explore(
        system,
        spec.invariant,
        max_states=instance.verify_max_states,
        max_depth=instance.verify_max_states,
        retain_graph=True,
        **explore_kwargs,
    )
    assert result.ok
    return spec, instance, result, StepInstance.from_system(system)


class TestTheoremsHold:
    def test_figure_1_mutex_is_deadlock_free(self):
        _, _, result, step = _graph_and_step(
            "figure-1-mutex", "figure-1-mutex(m=3)"
        )
        verdict = check_deadlock_freedom(step, result.graph)
        assert verdict.holds and verdict.lasso is None
        assert verdict.states == result.states_explored
        assert "no fair non-progress cycle" in verdict.detail

    def test_figure_2_consensus_is_obstruction_free(self):
        _, _, result, step = _graph_and_step(
            "figure-2-consensus", "figure-2-consensus(n=2)"
        )
        verdict = check_obstruction_freedom(step, result.graph)
        assert verdict.holds and verdict.lasso is None
        assert "every solo run" in verdict.detail

    def test_figure_3_renaming_is_obstruction_free(self):
        _, _, result, step = _graph_and_step(
            "figure-3-renaming", "figure-3-renaming(n=2)"
        )
        assert check_obstruction_freedom(step, result.graph).holds


class TestIncompleteGraphsAreRefused:
    def test_truncated_graph_supports_no_liveness_verdict(self):
        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        system = spec.system(instance)
        result = explore(
            system, spec.invariant, max_states=50, retain_graph=True
        )
        step = StepInstance.from_system(system)
        with pytest.raises(VerificationError, match="truncated"):
            check_deadlock_freedom(step, result.graph)
        with pytest.raises(VerificationError, match="truncated"):
            check_obstruction_freedom(step, result.graph)

    def test_verify_instance_raises_when_the_budget_is_too_small(self):
        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        with pytest.raises(VerificationError, match="verify_max_states"):
            verify_instance(
                spec, instance, request=RunRequest(max_states=50)
            )


class TestMutantCounterexample:
    @pytest.fixture(scope="class")
    def mutant_report(self):
        spec = get_problem("figure-1-mutex-even-m")
        instance = spec.instance("figure-1-mutex-even-m(m=4)")
        return spec, instance, verify_instance(spec, instance)

    def test_even_m_mutant_fails_deadlock_freedom_as_seeded(
        self, mutant_report
    ):
        _, _, report = mutant_report
        assert report.safety_ok  # mutual exclusion still holds at m=4
        (outcome,) = report.outcomes
        assert not outcome.verdict.holds
        assert outcome.ok  # expected violation, found: the report is OK
        assert outcome.describe() == (
            "deadlock-freedom (Theorem 3.4) violated (as seeded)"
        )
        assert outcome.verdict.lasso is not None

    def test_lasso_replays_through_the_pure_kernel(self, mutant_report):
        spec, instance, report = mutant_report
        lasso = report.outcomes[0].verdict.lasso
        graph = report.exploration.graph
        step = StepInstance.from_system(spec.system(instance))
        state = graph.nodes[graph.initial]
        for pid in lasso.prefix:
            state = step_value(step, state, pid)
        assert state == graph.nodes[lasso.entry]
        for pid in lasso.cycle:
            state = step_value(step, state, pid)
        assert state == graph.nodes[lasso.entry]  # the cycle closes

    def test_lasso_cycle_is_fair_and_never_enters_the_critical_section(
        self, mutant_report
    ):
        spec, instance, report = mutant_report
        lasso = report.outcomes[0].verdict.lasso
        system = spec.system(instance)
        live = set(system.scheduler.pids)
        assert live <= set(lasso.cycle)  # every live process steps
        # Replay prefix + three cycle turns on a fresh traced system:
        # the livelock means nobody ever reaches the critical section.
        traced = spec.system(instance, record_trace=True)
        schedule = list(lasso.prefix) + 3 * list(lasso.cycle)
        trace = replay_schedule(traced, schedule)
        assert len(trace) == len(schedule)
        assert trace.critical_section_entries() == 0

    def test_odd_m_neighbours_of_the_mutant_are_deadlock_free(self):
        # The violation is specific to even m: the same pipeline on the
        # shipped odd-m instances confirms Theorem 3.3 instead.
        spec = get_problem("figure-1-mutex")
        report = verify_instance(spec, spec.instance("figure-1-mutex(m=5)"))
        assert report.ok
        (outcome,) = report.outcomes
        assert outcome.verdict.holds


class TestVerifyInstancePipeline:
    def test_report_summary_carries_safety_and_liveness(self):
        spec = get_problem("figure-2-consensus")
        report = verify_instance(
            spec, spec.instance("figure-2-consensus(n=2)")
        )
        assert report.ok
        summary = report.summary()
        assert "safety exhaustive" in summary
        assert "obstruction-freedom (Theorem 4.1) holds" in summary
        assert report.retained_edges > 0
        assert report.explore_seconds > 0

    def test_manifest_round_trips_through_the_report_reader(self, tmp_path):
        from repro.obs import load_manifests
        from repro.verify import write_verify_manifest

        spec = get_problem("figure-1-mutex")
        instance = spec.instance("figure-1-mutex(m=3)")
        report = verify_instance(spec, instance)
        path = write_verify_manifest(tmp_path, spec, instance, report)
        (manifest,) = load_manifests(tmp_path)
        assert path.name == "verify-figure-1-mutex-m-3.json"
        assert manifest.kind == "verify"
        assert manifest.verdict() == "verified"
        assert manifest.outcome["retained_edges"] == report.retained_edges
        (prop,) = manifest.outcome["properties"]
        assert prop["kind"] == "deadlock-freedom" and prop["holds"]
