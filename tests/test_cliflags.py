"""The execution-flag matrix, pinned.

Every command that executes registry work either *accepts* one of the
five shared execution flags (``--kernel``, ``--backend``, ``--workers``,
``--seed``, ``--max-states``) or *explicitly rejects* it with
:func:`repro.cliflags.rejection_message`'s uniform text — silently
ignoring an execution flag is the failure mode ruled out here.  The
matrix lives in ``src/repro/cliflags.py``'s docstring; this module is
its executable twin.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.cliflags import rejection_message

REPO = Path(__file__).resolve().parents[1]


def run_expecting_usage_error(argv, capsys):
    """Run the CLI expecting argparse's exit-2 usage error; return stderr."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    return capsys.readouterr().err


def help_text(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--help"])
    assert excinfo.value.code == 0
    return capsys.readouterr().out


class TestRejectionMessage:
    def test_shape(self):
        assert rejection_message("--seed", "verify", "because") == (
            "--seed is not supported by `repro verify`: because"
        )


class TestVerifyRow:
    def test_accepts_kernel_backend_workers_max_states(self, capsys):
        text = help_text("verify", capsys)
        for flag in ("--kernel", "--backend", "--workers", "--max-states"):
            assert flag in text
        assert "--seed" not in text  # rejected flags are suppressed

    def test_rejects_seed_with_pinned_text(self, capsys):
        err = run_expecting_usage_error(
            ["verify", "--problem", "figure-1-mutex", "--seed", "3"], capsys
        )
        assert rejection_message(
            "--seed", "verify",
            "exhaustive verification quantifies over every schedule; "
            "there is nothing to seed (randomised search is `repro fuzz`)",
        ) in err


class TestSweepRow:
    def test_accepts_workers(self, capsys):
        assert "--workers" in help_text("sweep", capsys)

    @pytest.mark.parametrize("flag, reason", [
        ("--kernel",
         "grid cells replay live System runs through the interpreted "
         "scheduler; the compiled kernel serves the exhaustive walk "
         "(`repro verify --kernel compiled`)"),
        ("--backend",
         "the farm schedules cells across claiming processes; pick "
         "parallelism with --workers"),
        ("--seed",
         "adversary seeds ride in the --adversaries specs "
         "(e.g. random:SEED)"),
        ("--max-states",
         "run cells are step-bounded (--max-steps); the verify cell's "
         "state budget is --verify-max-states"),
    ])
    def test_rejects_with_pinned_text(self, flag, reason, capsys):
        err = run_expecting_usage_error(
            ["sweep", "--problem", "figure-1-mutex", flag, "x"], capsys
        )
        assert rejection_message(flag, "sweep", reason) in err


class TestFuzzRow:
    def test_accepts_all_five(self, capsys):
        text = help_text("fuzz", capsys)
        for flag in ("--kernel", "--backend", "--workers", "--seed",
                     "--max-states"):
            assert flag in text

    def test_backend_parallel_rejected_with_pinned_text(self, capsys):
        err = run_expecting_usage_error(
            ["fuzz", "--problem", "figure-1-mutex",
             "--backend", "parallel"], capsys
        )
        assert rejection_message(
            "--backend parallel", "fuzz",
            "episodes are serial by construction; shard them across "
            "farm cells with --workers",
        ) in err


class TestWorkersValidation:
    """``--workers 0`` (or negative, or junk) dies at the parser with
    the same one-line message in every command that accepts the flag —
    the text mirrors the backends' ConfigurationError for the same
    mistake, so the CLI and API layers never disagree."""

    @pytest.mark.parametrize("argv", [
        ["verify", "--problem", "figure-1-mutex"],
        ["sweep", "--problem", "figure-1-mutex"],
        ["fuzz", "--problem", "figure-1-mutex"],
    ], ids=["verify", "sweep", "fuzz"])
    @pytest.mark.parametrize("value, shown", [
        ("0", "0"), ("-2", "-2"), ("many", "'many'"),
    ])
    def test_rejected_with_pinned_text(self, argv, value, shown, capsys):
        err = run_expecting_usage_error(argv + ["--workers", value], capsys)
        assert (
            f"argument --workers: workers must be a positive int, "
            f"got {shown}" in err
        )

    @pytest.mark.parametrize("value, shown", [("0", "0"), ("-3", "-3")])
    def test_rejected_by_bench(self, value, shown):
        result = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "run_experiments.py"),
             "--bench", "--quick", "--backend", "parallel",
             "--workers", value],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 2
        assert (
            f"argument --workers: workers must be a positive int, "
            f"got {shown}" in result.stderr
        )


class TestBenchRow:
    def test_accepts_all_five(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "run_experiments.py"),
             "--help"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        for flag in ("--kernel", "--backend", "--workers", "--seed",
                     "--max-states"):
            assert flag in result.stdout
