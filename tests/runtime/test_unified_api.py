"""The unified exploration/sweep API surface and its deprecation shims.

One public spelling going forward — ``explore(..., reduction=...)`` and
``sweep(..., backend=...)`` — with the historical spellings
(:func:`explore_symmetry_reduced`, ``sweep(executor=...)``) retained as
warning shims that must produce identical results.
"""

import warnings

import pytest

import repro
from repro.analysis.experiments import sweep
from repro.core.mutex import AnonymousMutex
from repro.errors import ConfigurationError
from repro.memory.naming import IdentityNaming
from repro.obs import load_manifests
from repro.runtime.adversary import RandomAdversary
from repro.runtime.backends import (
    ProcessExecutor,
    SerialBackend,
    SerialExecutor,
    resolve_executor,
)
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.exploration import (
    explore,
    explore_symmetry_reduced,
    mutual_exclusion_invariant,
)
from repro.runtime.system import System
from repro.spec.mutex_spec import MutualExclusionChecker

from tests.conftest import pids


def mutex_system():
    return System(AnonymousMutex(m=3, cs_visits=1), pids(2), record_trace=False)


def mutex_sweep(**kwargs):
    return sweep(
        lambda: AnonymousMutex(m=3, cs_visits=1),
        pids(2),
        namings=[IdentityNaming()],
        adversaries=[RandomAdversary(seed) for seed in range(2)],
        checkers_factory=lambda: [MutualExclusionChecker()],
        max_steps=20_000,
        **kwargs,
    )


class TestUnifiedExplore:
    def test_reduction_defaults_to_none(self):
        result = explore(mutex_system(), mutual_exclusion_invariant)
        assert result.group_size == 1
        assert result.orbits_collapsed == 0

    def test_reduction_none_equals_default(self):
        default = explore(mutex_system(), mutual_exclusion_invariant)
        spelled = explore(
            mutex_system(), mutual_exclusion_invariant, reduction="none"
        )
        assert spelled.states_explored == default.states_explored

    def test_reduction_symmetry_engages_the_group(self):
        result = explore(
            mutex_system(), mutual_exclusion_invariant, reduction="symmetry"
        )
        assert result.group_size >= 2
        assert result.orbits_collapsed > 0

    def test_reduction_and_canonicalizer_conflict(self):
        system = mutex_system()
        with pytest.raises(ConfigurationError, match="not both"):
            explore(
                system,
                mutual_exclusion_invariant,
                reduction="symmetry",
                canonicalizer=TrivialCanonicalizer(system.scheduler),
            )

    def test_unknown_reduction_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown reduction"):
            explore(
                mutex_system(), mutual_exclusion_invariant, reduction="magic"
            )

    def test_backend_accepts_a_string(self):
        result = explore(
            mutex_system(), mutual_exclusion_invariant, backend="serial"
        )
        assert result.backend == "serial"

    def test_package_root_exports_the_unified_surface(self):
        assert repro.explore is explore
        assert repro.sweep is sweep
        for name in ("Telemetry", "NullTelemetry", "RunManifest", "sweep"):
            assert name in repro.__all__


class TestExploreShim:
    def test_shim_warns_and_matches_the_unified_spelling(self):
        new = explore(
            mutex_system(), mutual_exclusion_invariant, reduction="symmetry"
        )
        with pytest.warns(DeprecationWarning, match="explore_symmetry_reduced"):
            old = explore_symmetry_reduced(
                mutex_system(), mutual_exclusion_invariant
            )
        assert old.states_explored == new.states_explored
        assert old.group_size == new.group_size
        assert old.ok == new.ok

    def test_shim_forwards_backend_and_budgets(self):
        with pytest.warns(DeprecationWarning):
            result = explore_symmetry_reduced(
                mutex_system(),
                mutual_exclusion_invariant,
                max_states=10,
                backend=SerialBackend(),
            )
        assert result.truncated_by == "max_states"

    def test_unified_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            explore(
                mutex_system(), mutual_exclusion_invariant, reduction="symmetry"
            )


class TestUnifiedSweep:
    def test_backend_string_serial(self):
        result = mutex_sweep(backend="serial")
        assert result.runs == 2 and result.all_ok

    def test_backend_string_process(self):
        serial = mutex_sweep(backend="serial")
        parallel = mutex_sweep(backend="process")
        assert [r.trace.events for r in parallel.records] == [
            r.trace.events for r in serial.records
        ]

    def test_backend_instance_passthrough(self):
        result = mutex_sweep(backend=SerialExecutor())
        assert result.runs == 2

    def test_default_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            mutex_sweep()

    def test_manifest_dir_writes_one_manifest_per_cell(self, tmp_path):
        result = mutex_sweep(backend="serial", manifest_dir=tmp_path)
        manifests = load_manifests(tmp_path)
        assert len(manifests) == result.runs
        assert {m.kind for m in manifests} == {"sweep-cell"}
        assert all(m.verdict() == "ok" for m in manifests)

    def test_repeated_manifest_dirs_do_not_overwrite(self, tmp_path):
        mutex_sweep(backend="serial", manifest_dir=tmp_path)
        mutex_sweep(backend="serial", manifest_dir=tmp_path)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert len(names) == 2 and names[0] != names[1]


class TestShimMessages:
    """Pin the exact deprecation text.

    Downstream scripts grep for these strings when migrating, and
    CHANGES.md documents the removal target (two PRs after PR 5) against
    these exact spellings — an edit here must update both.
    """

    def test_explore_shim_message_is_pinned(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            explore_symmetry_reduced(mutex_system(), mutual_exclusion_invariant)
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert messages == [
            'explore_symmetry_reduced() is deprecated; call '
            'explore(..., reduction="symmetry") instead'
        ]

    def test_sweep_executor_shim_message_is_pinned(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            mutex_sweep(executor=SerialExecutor())
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert messages == [
            'sweep(executor=...) is deprecated; pass backend="serial", '
            'backend="process" or backend=<executor> instead'
        ]


class TestSweepShim:
    def test_executor_kwarg_warns_and_matches_backend(self):
        new = mutex_sweep(backend=SerialExecutor())
        with pytest.warns(DeprecationWarning, match="sweep\\(executor=...\\)"):
            old = mutex_sweep(executor=SerialExecutor())
        assert [r.trace.events for r in old.records] == [
            r.trace.events for r in new.records
        ]

    def test_backend_and_executor_conflict(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="not both"):
                mutex_sweep(backend="serial", executor=SerialExecutor())


class TestResolveExecutor:
    def test_strings(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        process = resolve_executor("process", workers=3)
        assert isinstance(process, ProcessExecutor)
        assert process.workers == 3

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_spec_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown sweep backend"):
            resolve_executor("quantum")
