"""The unified exploration/sweep API surface.

One public spelling — ``explore(..., reduction=...)`` and
``sweep(..., backend=...)``.  The PR-5 deprecation shims
(``explore_symmetry_reduced``, ``sweep(executor=...)``) are gone; these
tests pin the unified surface they migrated to.
"""

import warnings

import pytest

import repro
from repro.analysis.experiments import sweep
from repro.core.mutex import AnonymousMutex
from repro.errors import ConfigurationError
from repro.memory.naming import IdentityNaming
from repro.obs import load_manifests
from repro.runtime.adversary import RandomAdversary
from repro.runtime.backends import (
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System
from repro.spec.mutex_spec import MutualExclusionChecker

from tests.conftest import pids


def mutex_system():
    return System(AnonymousMutex(m=3, cs_visits=1), pids(2), record_trace=False)


def mutex_sweep(**kwargs):
    return sweep(
        lambda: AnonymousMutex(m=3, cs_visits=1),
        pids(2),
        namings=[IdentityNaming()],
        adversaries=[RandomAdversary(seed) for seed in range(2)],
        checkers_factory=lambda: [MutualExclusionChecker()],
        max_steps=20_000,
        **kwargs,
    )


class TestUnifiedExplore:
    def test_reduction_defaults_to_none(self):
        result = explore(mutex_system(), mutual_exclusion_invariant)
        assert result.group_size == 1
        assert result.orbits_collapsed == 0

    def test_reduction_none_equals_default(self):
        default = explore(mutex_system(), mutual_exclusion_invariant)
        spelled = explore(
            mutex_system(), mutual_exclusion_invariant, reduction="none"
        )
        assert spelled.states_explored == default.states_explored

    def test_reduction_symmetry_engages_the_group(self):
        result = explore(
            mutex_system(), mutual_exclusion_invariant, reduction="symmetry"
        )
        assert result.group_size >= 2
        assert result.orbits_collapsed > 0

    def test_reduction_symmetry_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            explore(
                mutex_system(), mutual_exclusion_invariant, reduction="symmetry"
            )

    def test_reduction_and_canonicalizer_conflict(self):
        system = mutex_system()
        with pytest.raises(ConfigurationError, match="not both"):
            explore(
                system,
                mutual_exclusion_invariant,
                reduction="symmetry",
                canonicalizer=TrivialCanonicalizer(system.scheduler),
            )

    def test_unknown_reduction_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown reduction"):
            explore(
                mutex_system(), mutual_exclusion_invariant, reduction="magic"
            )

    def test_backend_accepts_a_string(self):
        result = explore(
            mutex_system(), mutual_exclusion_invariant, backend="serial"
        )
        assert result.backend == "serial"

    def test_deprecated_spelling_is_gone(self):
        import repro.runtime.exploration as exploration

        assert not hasattr(exploration, "explore_symmetry_reduced")

    def test_package_root_exports_the_unified_surface(self):
        assert repro.explore is explore
        assert repro.sweep is sweep
        for name in ("Telemetry", "NullTelemetry", "RunManifest", "sweep"):
            assert name in repro.__all__


class TestUnifiedSweep:
    def test_backend_string_serial(self):
        result = mutex_sweep(backend="serial")
        assert result.runs == 2 and result.all_ok

    def test_backend_string_process(self):
        serial = mutex_sweep(backend="serial")
        parallel = mutex_sweep(backend="process")
        assert [r.trace.events for r in parallel.records] == [
            r.trace.events for r in serial.records
        ]

    def test_backend_instance_passthrough(self):
        result = mutex_sweep(backend=SerialExecutor())
        assert result.runs == 2

    def test_default_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            mutex_sweep()

    def test_executor_kwarg_is_gone(self):
        with pytest.raises(TypeError, match="executor"):
            mutex_sweep(executor=SerialExecutor())

    def test_manifest_dir_writes_one_manifest_per_cell(self, tmp_path):
        result = mutex_sweep(backend="serial", manifest_dir=tmp_path)
        manifests = load_manifests(tmp_path)
        assert len(manifests) == result.runs
        assert {m.kind for m in manifests} == {"sweep-cell"}
        assert all(m.verdict() == "ok" for m in manifests)

    def test_repeated_manifest_dirs_do_not_overwrite(self, tmp_path):
        mutex_sweep(backend="serial", manifest_dir=tmp_path)
        mutex_sweep(backend="serial", manifest_dir=tmp_path)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert len(names) == 2 and names[0] != names[1]


class TestResolveExecutor:
    def test_strings(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        process = resolve_executor("process", workers=3)
        assert isinstance(process, ProcessExecutor)
        assert process.workers == 3

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_spec_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown sweep backend"):
            resolve_executor("quantum")
