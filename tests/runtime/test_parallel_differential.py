"""Differential bit-identity of the work-stealing parallel backend.

The batched packed-state core must be an observational no-op against
the serial reference walk: on every shipped verify-role instance and
every non-hooked lint mutant, at every worker count in {1, 2, 4}, the
deterministic result fields — verdict, completeness, truncation cause,
state/event counters, stuck states, peak visited, group size — and the
retained ``StateGraph.to_bytes()`` must match
:class:`~repro.runtime.backends.SerialBackend` exactly.

What is *not* compared is deliberate, not lenient:
``max_depth_reached`` depends on discovery order (DFS finds deep paths
first, the parallel walk breadth-ish ones), wall-clock and per-worker
telemetry are timing, and on ``max_depth``-truncated walks the visited
*set itself* is discovery-order-dependent — docs/EXPLORATION.md spells
out the full contract.  Violation runs stop at the first violation
either walk happens to reach, so there only the verdict, the
truncation cause and the replayability of the reported schedule are
pinned.
"""

import pytest

from repro.problems import instances_with_role
from repro.runtime.backends import ParallelBackend, SerialBackend
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.exploration import explore
from repro.runtime.replay import replay_schedule
from repro.runtime.system import System

from tests.conftest import pids
from tests.lint.mutants import ALL_MUTANTS, HOOKED_MUTANTS, MutantAlgorithm

WORKER_COUNTS = (1, 2, 4)

#: Result fields that are deterministic across backends and worker
#: counts on a complete trivial-dedup walk.
DETERMINISTIC_FIELDS = (
    "ok",
    "complete",
    "truncated_by",
    "states_explored",
    "events_executed",
    "stuck_states",
    "peak_visited",
    "group_size",
)

VERIFY_ROWS = list(instances_with_role("verify", include_mutants=True))

NON_HOOKED_MUTANTS = [
    cls for cls, _pass in ALL_MUTANTS if cls not in HOOKED_MUTANTS
]


def null_invariant(_system):
    return None


def run_verify_instance(spec, inst, backend):
    system = spec.system(inst)
    return explore(
        system,
        spec.invariant,
        canonicalizer=TrivialCanonicalizer(system.scheduler),
        backend=backend,
        retain_graph=True,
        max_states=inst.verify_max_states,
        max_depth=1_000_000,
    )


@pytest.fixture(scope="module")
def serial_reference():
    """One serial run per instance, shared across the worker matrix."""
    cache = {}

    def get(key, factory):
        if key not in cache:
            cache[key] = factory()
        return cache[key]

    return get


class TestVerifyInstances:
    @pytest.mark.parametrize(
        "spec, inst", VERIFY_ROWS, ids=[inst.label for _, inst in VERIFY_ROWS]
    )
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_serial(
        self, spec, inst, workers, serial_reference
    ):
        serial = serial_reference(
            inst.label, lambda: run_verify_instance(spec, inst, SerialBackend())
        )
        parallel = run_verify_instance(
            spec, inst, ParallelBackend(workers=workers)
        )
        assert parallel.backend == "parallel"
        assert parallel.workers == workers
        assert parallel.kernel == "compiled", (
            f"{inst.label}: parallel backend fell back to the interpreter"
        )
        if serial.complete:
            for field in DETERMINISTIC_FIELDS:
                got, want = getattr(parallel, field), getattr(serial, field)
                assert got == want, (
                    f"{inst.label} x{workers}: {field} diverged: "
                    f"{got!r} != {want!r}"
                )
            assert serial.graph is not None and parallel.graph is not None
            assert parallel.graph.to_bytes() == serial.graph.to_bytes(), (
                f"{inst.label} x{workers}: retained StateGraph bytes "
                f"diverged from serial"
            )
        else:
            # The one incomplete verify walk is the seeded mutant's
            # violation; which witness is found first is scheduling,
            # that one is found (and certifies by replay) is not.
            assert serial.truncated_by == "violation"
            assert parallel.truncated_by == "violation"
            assert not serial.ok and not parallel.ok
            assert parallel.violation_schedule is not None
            fresh = spec.system(inst)
            replay_schedule(fresh, parallel.violation_schedule)
            assert spec.invariant(fresh) is not None


class TestNonHookedMutants:
    """Every lint mutant, including the two whose exploration raises.

    Budgets keep the walks small, so some mutants truncate; the
    comparison tightens with what determinism allows: everything on
    complete runs, verdict + truncation cause + capped state count on
    ``max_states`` truncation, verdict + truncation cause on
    ``max_depth`` truncation (there the visited set is
    discovery-order-dependent by design), exception type when the walk
    raises.
    """

    BUDGETS = dict(max_states=2_000, max_depth=200)

    @pytest.mark.parametrize(
        "mutant_cls",
        NON_HOOKED_MUTANTS,
        ids=[cls.__name__ for cls in NON_HOOKED_MUTANTS],
    )
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_serial(self, mutant_cls, workers, serial_reference):
        def run(backend):
            system = System(
                MutantAlgorithm(mutant_cls), pids(2), record_trace=False
            )
            try:
                result = explore(
                    system,
                    null_invariant,
                    canonicalizer=TrivialCanonicalizer(system.scheduler),
                    backend=backend,
                    retain_graph=True,
                    **self.BUDGETS,
                )
            except Exception as error:  # noqa: BLE001 — compared below
                return ("raised", type(error).__name__)
            return result

        serial = serial_reference(
            mutant_cls.__name__, lambda: run(SerialBackend())
        )
        parallel = run(ParallelBackend(workers=workers))
        if isinstance(serial, tuple):
            assert parallel == serial
            return
        assert not isinstance(parallel, tuple), (
            f"parallel raised {parallel!r}, serial returned a result"
        )
        assert parallel.truncated_by == serial.truncated_by
        assert parallel.ok == serial.ok
        assert parallel.complete == serial.complete
        if serial.complete:
            for field in DETERMINISTIC_FIELDS:
                assert getattr(parallel, field) == getattr(serial, field)
            assert serial.graph is not None and parallel.graph is not None
            assert parallel.graph.to_bytes() == serial.graph.to_bytes()
        elif serial.truncated_by == "max_states":
            assert parallel.states_explored == serial.states_explored
