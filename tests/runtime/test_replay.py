"""Tests for trace serialisation and replay."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.errors import ConfigurationError
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import RandomAdversary, StagedObstructionAdversary
from repro.runtime.replay import (
    load_trace,
    replay,
    save_trace,
    schedule_of,
    trace_from_dict,
    trace_to_dict,
)
from repro.runtime.system import System

from tests.conftest import pids


def consensus_trace(seed=3):
    inputs = {pids(2)[0]: "a", pids(2)[1]: "b"}
    system = System(AnonymousConsensus(n=2), inputs, naming=RandomNaming(1))
    trace = system.run(
        StagedObstructionAdversary(prefix_steps=20, seed=seed), max_steps=100_000
    )
    return inputs, trace


class TestSerialisation:
    def test_round_trip_consensus_trace(self):
        _, trace = consensus_trace()
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.pids == trace.pids
        assert restored.events == trace.events
        assert restored.outputs == trace.outputs
        assert restored.final_values == trace.final_values
        assert restored.stop_reason == trace.stop_reason

    def test_round_trip_mutex_trace_with_phases(self):
        system = System(AnonymousMutex(m=3, cs_visits=1), pids(2))
        trace = system.run(RandomAdversary(0), max_steps=50_000)
        restored = trace_from_dict(trace_to_dict(trace))
        assert [e.phase for e in restored.events] == [
            e.phase for e in trace.events
        ]
        assert (
            restored.critical_section_intervals()
            == trace.critical_section_intervals()
        )

    def test_round_trip_renaming_records_with_history(self):
        system = System(AnonymousRenaming(n=3), pids(3))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=40, seed=2), max_steps=500_000
        )
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.events == trace.events
        assert restored.outputs == trace.outputs

    def test_save_and_load_file(self, tmp_path):
        _, trace = consensus_trace()
        path = tmp_path / "run.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.events == trace.events
        assert loaded.outputs == trace.outputs

    def test_json_is_actually_json(self, tmp_path):
        import json

        _, trace = consensus_trace()
        path = tmp_path / "run.json"
        save_trace(trace, path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["register_count"] == 3


class TestReplay:
    def test_replay_reproduces_outputs(self):
        inputs, trace = consensus_trace()
        fresh = System(AnonymousConsensus(n=2), inputs, naming=RandomNaming(1))
        new_trace = replay(trace, fresh)
        assert new_trace.outputs == trace.outputs
        assert new_trace.final_values == trace.final_values

    def test_schedule_of_extraction(self):
        _, trace = consensus_trace()
        schedule = schedule_of(trace)
        assert len(schedule) == len(trace)
        assert set(schedule) <= set(trace.pids)

    def test_replay_detects_different_naming(self):
        inputs, trace = consensus_trace()
        differently_named = System(
            AnonymousConsensus(n=2), inputs, naming=RandomNaming(99)
        )
        with pytest.raises(ConfigurationError):
            replay(trace, differently_named)

    def test_replay_detects_different_inputs(self):
        inputs, trace = consensus_trace()
        other_inputs = {pid: f"other-{pid}" for pid in inputs}
        mismatched = System(
            AnonymousConsensus(n=2), other_inputs, naming=RandomNaming(1)
        )
        with pytest.raises(ConfigurationError):
            replay(trace, mismatched)

    def test_replay_detects_wrong_participants(self):
        inputs, trace = consensus_trace()
        wrong = System(
            AnonymousConsensus(n=2), {901: "a", 903: "b"}, naming=RandomNaming(1)
        )
        with pytest.raises(ConfigurationError):
            replay(trace, wrong)

    def test_non_strict_replay_just_runs(self):
        inputs, trace = consensus_trace()
        fresh = System(AnonymousConsensus(n=2), inputs, naming=RandomNaming(1))
        new_trace = replay(trace, fresh, strict=False)
        assert len(new_trace) == len(trace)
