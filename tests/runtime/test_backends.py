"""Differential and unit tests for the pluggable exploration backends.

:class:`SerialBackend` is the reference semantics (the seed DFS over
value states; its bit-parity with the historical explorer is pinned by
``test_exploration_differential.py``, which now runs through it).  The
tests here pin the contract of :class:`ParallelBackend` against it —
verdict-identical on every shipped instance and every lint mutant,
identical state/stuck counts on complete runs, replayable violation
schedules — plus the budget-truncation accounting, the inert self-loop
acceleration's livelock break, and the executor pair the sweep harness
fans out over.
"""

import multiprocessing
import pickle

import pytest

from repro.analysis.experiments import sweep
from repro.core.mutex import AnonymousMutex
from repro.errors import ConfigurationError, ExplorationLimitExceeded
from repro.memory.naming import IdentityNaming
from repro.runtime.adversary import RandomAdversary, RoundRobinAdversary
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.backends import (
    ParallelBackend,
    ProcessExecutor,
    SerialBackend,
    SerialExecutor,
    resolve_backend,
)
from repro.runtime.canonical import build_canonicalizer
from repro.runtime.exploration import (
    ExplorationResult,
    explore,
    mutual_exclusion_invariant,
)
from repro.runtime.ops import ReadOp
from repro.runtime.replay import replay_schedule
from repro.runtime.system import System
from repro.spec.mutex_spec import MutualExclusionChecker

from tests.conftest import pids
from tests.lint.mutants import ALL_MUTANTS, HOOKED_MUTANTS, MutantAlgorithm
from tests.runtime.test_exploration_differential import (
    SHIPPED_INSTANCES,
    VIOLATING_INSTANCES,
    null_invariant,
)


def mutex_system(m=3, record_trace=False):
    return System(AnonymousMutex(m=m, cs_visits=1), pids(2), record_trace=record_trace)


class TestResolveBackend:
    def test_serial_spec(self):
        backend = resolve_backend("serial")
        assert isinstance(backend, SerialBackend)
        assert (backend.name, backend.workers) == ("serial", 1)

    def test_parallel_spec_honours_workers(self):
        backend = resolve_backend("parallel", workers=3)
        assert isinstance(backend, ParallelBackend)
        assert (backend.name, backend.workers) == ("parallel", 3)

    def test_unknown_spec_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown exploration backend"):
            resolve_backend("quantum")

    def test_nonpositive_workers_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelBackend(workers=0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(workers=0)

    def test_explore_defaults_to_serial(self):
        result = explore(mutex_system(), mutual_exclusion_invariant)
        assert (result.backend, result.workers) == ("serial", 1)


class TestParallelMatchesSerial:
    """The tentpole differential: same verdicts, same complete-run counts."""

    @pytest.mark.parametrize("factory, invariant", SHIPPED_INSTANCES)
    def test_shipped_instances_agree(self, factory, invariant):
        serial = explore(factory(), invariant, reduction="symmetry")
        parallel = explore(
            factory(), invariant, reduction="symmetry",
            backend=ParallelBackend(workers=2),
        )
        assert (parallel.backend, parallel.workers) == ("parallel", 2)
        assert serial.complete and parallel.complete
        assert serial.ok and parallel.ok
        # Complete runs visit the same quotient, so the counts that
        # describe *the state space* coincide exactly.  Work counters
        # do not: orbits_collapsed counts duplicate encounters (which
        # the parallel worker-side filter deliberately short-circuits)
        # and events_executed depends on which footprint-equal
        # representative claimed each key first (encounter order), so
        # acceleration loops may take a few more or fewer micro-steps.
        assert parallel.states_explored == serial.states_explored
        assert parallel.stuck_states == serial.stuck_states
        assert parallel.group_size == serial.group_size
        assert parallel.peak_visited == serial.peak_visited

    @pytest.mark.parametrize("factory, invariant", VIOLATING_INSTANCES)
    def test_violations_agree_and_replay(self, factory, invariant):
        serial = explore(factory(), invariant, reduction="symmetry")
        parallel = explore(
            factory(), invariant, reduction="symmetry",
            backend=ParallelBackend(workers=2),
        )
        assert not serial.ok and not parallel.ok
        assert serial.truncated_by == "violation"
        assert parallel.truncated_by == "violation"
        assert parallel.violation_schedule is not None
        fresh = factory()
        replay_schedule(fresh, parallel.violation_schedule)
        assert invariant(fresh) is not None

    @pytest.mark.parametrize(
        "mutant_cls",
        [cls for cls, _pass in ALL_MUTANTS if cls not in HOOKED_MUTANTS],
        ids=[
            cls.__name__
            for cls, _pass in ALL_MUTANTS
            if cls not in HOOKED_MUTANTS
        ],
    )
    def test_mutants_agree(self, mutant_cls):
        def build():
            return System(
                MutantAlgorithm(mutant_cls), pids(2), record_trace=False
            )

        budgets = dict(max_states=2_000, max_depth=200)
        outcomes = []
        for backend in (SerialBackend(), ParallelBackend(workers=2)):
            system = build()
            try:
                result = explore(
                    system,
                    null_invariant,
                    canonicalizer=build_canonicalizer(system),
                    backend=backend,
                    **budgets,
                )
            except Exception as error:  # noqa: BLE001 — compared below
                outcomes.append(("raised", type(error).__name__))
            else:
                # Budget-truncated runs cut different under-
                # approximations (DFS spine vs BFS ball): compare the
                # verdict always, the space-shaped counts only when
                # both walks reached the fixpoint.
                outcome = [result.ok, result.complete]
                if result.complete:
                    outcome += [
                        result.states_explored,
                        result.events_executed,
                        result.stuck_states,
                    ]
                outcomes.append(outcome)
        assert outcomes[0] == outcomes[1]

    def test_spawn_context_reproduces_fork_results(self):
        # Workers under ``spawn`` run a fresh interpreter with its own
        # hash seed: identical results pin the content-addressed keys'
        # process independence end to end.
        serial = explore(
            mutex_system(), mutual_exclusion_invariant, reduction="symmetry"
        )
        spawned = explore(
            mutex_system(),
            mutual_exclusion_invariant,
            reduction="symmetry",
            backend=ParallelBackend(
                workers=2,
                chunk_size=1,  # force work distribution across workers
                mp_context=multiprocessing.get_context("spawn"),
            ),
        )
        assert spawned.complete and spawned.ok
        assert spawned.states_explored == serial.states_explored
        assert spawned.stuck_states == serial.stuck_states


BACKENDS = [
    pytest.param(lambda: SerialBackend(), id="serial"),
    pytest.param(lambda: ParallelBackend(workers=2), id="parallel"),
]


class TestBudgetAccounting:
    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_max_depth_prunes_without_stopping(self, make_backend):
        result = explore(
            mutex_system(m=5),
            mutual_exclusion_invariant,
            max_depth=3,
            backend=make_backend(),
        )
        assert result.truncated_by == "max_depth"
        assert not result.complete
        assert result.ok
        assert result.max_depth_reached == 3
        assert result.states_explored > 1

    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_max_states_stops_immediately(self, make_backend):
        result = explore(
            mutex_system(m=5),
            mutual_exclusion_invariant,
            max_states=10,
            backend=make_backend(),
        )
        assert result.truncated_by == "max_states"
        assert not result.complete
        assert result.peak_visited <= 10

    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_raise_on_truncation(self, make_backend):
        with pytest.raises(ExplorationLimitExceeded, match="max_depth"):
            explore(
                mutex_system(m=5),
                mutual_exclusion_invariant,
                max_depth=2,
                raise_on_truncation=True,
                backend=make_backend(),
            )

    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_crash_terminal_states_are_settled_not_stuck(self, make_backend):
        system = mutex_system()
        system.scheduler.crash(pids(2)[1])
        result = explore(
            system, mutual_exclusion_invariant, backend=make_backend()
        )
        assert result.complete and result.ok
        assert result.stuck_states == 0


# ---------------------------------------------------------------------------
# Inert self-loop acceleration
# ---------------------------------------------------------------------------


class _SpinState:
    """Hashable spin-local state (plain class to keep it minimal)."""

    __slots__ = ("counter",)

    def __init__(self, counter: int) -> None:
        self.counter = counter

    def __eq__(self, other) -> bool:
        return isinstance(other, _SpinState) and other.counter == self.counter

    def __hash__(self) -> int:
        return hash(("spin", self.counter))

    def __repr__(self) -> str:
        return f"_SpinState({self.counter})"


class _SpinAutomaton(ProcessAutomaton):
    """Reads register 0 forever; the local counter cycles mod ``period``.

    With ``period=1`` every step reproduces the *identical* global
    state; with a larger period the states differ but the footprint
    hook collapses the counter away, so the canonicalizer sees an inert
    self-loop whose local states cycle — exactly the shape the
    ``seen_locals`` livelock break exists for.
    """

    SYMMETRIC = True
    PC_LINES = {"spin": "synthetic — not from the paper"}

    def __init__(self, pid, period: int) -> None:
        self.pid = pid
        self.period = period

    def initial_state(self):
        return _SpinState(0)

    def next_op(self, state):
        return ReadOp(0)

    def apply(self, state, op, result):
        return _SpinState((state.counter + 1) % self.period)

    def is_halted(self, state):
        return False

    # Trusted hook bundle: the counter is dead state (never read, never
    # written to memory), so footprints may drop it.
    def symmetry_signature(self):
        return None

    def state_footprint(self, state):
        return "spinning"

    def rename_state_footprint(self, footprint, pids_renamed, values_renamed):
        return footprint

    def rename_register_value(self, value, pids_renamed, values_renamed):
        return value


class _SpinAlgorithm(Algorithm):
    name = "spin"

    def __init__(self, period: int) -> None:
        self.period = period

    def register_count(self) -> int:
        return 1

    def automaton_for(self, pid, input=None):
        return _SpinAutomaton(pid, self.period)


class TestInertSelfLoopAcceleration:
    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_identical_state_spin_terminates(self, make_backend):
        # period=1: the successor *is* the parent state.  The walk must
        # recognise the livelock and reach a fixpoint with one state.
        system = System(_SpinAlgorithm(period=1), pids(1), record_trace=False)
        result = explore(system, null_invariant, backend=make_backend())
        assert result.complete and result.ok
        assert result.states_explored == 1
        # First step plus one acceleration step before the repeated
        # local state breaks the loop.
        assert result.events_executed == 2

    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_footprint_collapsed_spin_terminates(self, make_backend):
        # period=3 under the footprint hook: raw keys repeat while the
        # local states cycle 1 → 2 → 0 → 1; only the seen_locals check
        # stops the acceleration loop.
        system = System(_SpinAlgorithm(period=3), pids(1), record_trace=False)
        canonicalizer = build_canonicalizer(system)
        assert canonicalizer.uses_footprints
        result = explore(
            system,
            null_invariant,
            canonicalizer=canonicalizer,
            backend=make_backend(),
        )
        assert result.complete and result.ok
        assert result.states_explored == 1
        # First step, then the cycle 2, 0, 1 — the last one repeats.
        assert result.events_executed == 4


# ---------------------------------------------------------------------------
# explore() must not touch the system (the historical record_trace bug)
# ---------------------------------------------------------------------------


class TestExploreLeavesTheSystemUntouched:
    @pytest.mark.parametrize("make_backend", BACKENDS)
    def test_record_trace_and_state_survive(self, make_backend):
        # The seed explorer force-flipped record_trace to False and
        # never restored it, silently breaking any later system.run()
        # the caller expected to be traced.
        system = mutex_system(record_trace=True)
        before = system.scheduler.capture_state()
        result = explore(
            system, mutual_exclusion_invariant, backend=make_backend()
        )
        assert result.complete and result.ok
        assert system.scheduler.record_trace is True
        assert len(system.scheduler.trace) == 0
        assert system.scheduler.steps_so_far == 0
        assert system.scheduler.capture_state() == before
        # ... so a subsequent live run still records its trace.
        trace = system.run(RoundRobinAdversary(), max_steps=500)
        assert len(trace) > 0


class TestStatesPerSecond:
    def base(self, **overrides):
        values = dict(
            complete=True,
            states_explored=100,
            events_executed=0,
            max_depth_reached=0,
        )
        values.update(overrides)
        return ExplorationResult(**values)

    def test_sub_timer_walks_have_no_rate(self):
        assert self.base(wall_seconds=0.0).states_per_second is None

    def test_positive_wall_time_gives_a_rate(self):
        assert self.base(wall_seconds=0.5).states_per_second == 200.0


# ---------------------------------------------------------------------------
# Executors (sweep fan-out)
# ---------------------------------------------------------------------------


def _square(value: int) -> int:
    return value * value


class TestExecutors:
    def test_serial_executor_runs_initializer_in_process(self):
        seen = []
        executor = SerialExecutor()
        out = executor.map(
            _square, [3, 1, 2], initializer=seen.append, initargs=("ready",)
        )
        assert out == [9, 1, 4]
        assert seen == ["ready"]

    def test_process_executor_preserves_order(self):
        out = ProcessExecutor(workers=2).map(_square, list(range(10)))
        assert out == [n * n for n in range(10)]

    def test_process_executor_empty_items_short_circuit(self):
        assert ProcessExecutor(workers=2).map(_square, []) == []

    def test_sweep_records_identical_under_both_executors(self):
        def run(backend):
            return sweep(
                lambda: AnonymousMutex(m=3, cs_visits=1),
                pids(2),
                namings=[IdentityNaming()],
                adversaries=[RoundRobinAdversary()]
                + [RandomAdversary(seed) for seed in range(3)],
                checkers_factory=lambda: [MutualExclusionChecker()],
                max_steps=20_000,
                backend=backend,
            )

        serial = run(SerialExecutor())
        parallel = run(ProcessExecutor(workers=2))
        assert serial.runs == parallel.runs == 4
        for ours, theirs in zip(serial.records, parallel.records):
            assert ours.naming == theirs.naming
            assert ours.adversary == theirs.adversary
            assert ours.ok == theirs.ok
            assert ours.metrics == theirs.metrics
            assert ours.trace.events == theirs.trace.events


class TestTaskPickling:
    def test_a_whole_task_round_trips(self):
        from repro.runtime.backends import ExplorationTask
        from repro.runtime.kernel import StepInstance

        system = mutex_system()
        task = ExplorationTask(
            instance=StepInstance.from_system(system),
            initial=system.scheduler.capture_state(),
            invariant=mutual_exclusion_invariant,
            canonicalizer=build_canonicalizer(system),
            max_states=100,
            max_depth=100,
        )
        copy = pickle.loads(pickle.dumps(task))
        assert copy.initial == task.initial
        original = task.canonicalizer.key_of_state(task.initial)
        assert copy.canonicalizer.key_of_state(copy.initial) == original
        # The unpickled canonicalizer has no live scheduler to read.
        with pytest.raises(RuntimeError, match="key_of_state"):
            copy.canonicalizer.key_of()
