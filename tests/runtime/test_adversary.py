"""Unit tests for adversary strategies."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.errors import SchedulingError
from repro.runtime.adversary import (
    AlternatingBurstAdversary,
    CrashAdversary,
    FixedScheduleAdversary,
    LockstepAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
    standard_adversaries,
)
from repro.runtime.system import System

from tests.conftest import pids


def consensus_system(n=2):
    inputs = {pid: f"v{k}" for k, pid in enumerate(pids(n))}
    return System(AnonymousConsensus(n=n), inputs)


class TestRoundRobin:
    def test_cycles_in_order(self):
        system = consensus_system(3)
        adversary = RoundRobinAdversary(order=list(pids(3)))
        chosen = [adversary.choose(system.scheduler) for _ in range(6)]
        assert chosen == list(pids(3)) * 2

    def test_skips_halted_processes(self):
        system = consensus_system(2)
        p1, p2 = pids(2)
        system.scheduler.run_solo_until_halt(p1)
        adversary = RoundRobinAdversary(order=[p1, p2])
        assert adversary.choose(system.scheduler) == p2

    def test_reset_restarts_cursor(self):
        system = consensus_system(2)
        adversary = RoundRobinAdversary(order=list(pids(2)))
        adversary.choose(system.scheduler)
        adversary.reset()
        assert adversary.choose(system.scheduler) == pids(2)[0]


class TestLockstep:
    def test_strict_rotation(self):
        system = consensus_system(3)
        adversary = LockstepAdversary(pids(3))
        chosen = [adversary.choose(system.scheduler) for _ in range(3)]
        assert chosen == list(pids(3))

    def test_stops_when_member_halts(self):
        system = consensus_system(2)
        p1, _ = pids(2)
        system.scheduler.run_solo_until_halt(p1)
        adversary = LockstepAdversary(pids(2))
        assert adversary.choose(system.scheduler) is None


class TestRandom:
    def test_deterministic_per_seed(self):
        sys_a, sys_b = consensus_system(3), consensus_system(3)
        a, b = RandomAdversary(7), RandomAdversary(7)
        seq_a = [a.choose(sys_a.scheduler) for _ in range(20)]
        seq_b = [b.choose(sys_b.scheduler) for _ in range(20)]
        assert seq_a == seq_b

    def test_reset_replays_sequence(self):
        system = consensus_system(3)
        adversary = RandomAdversary(5)
        first = [adversary.choose(system.scheduler) for _ in range(15)]
        adversary.reset()
        second = [adversary.choose(system.scheduler) for _ in range(15)]
        assert first == second

    def test_only_chooses_enabled(self):
        system = consensus_system(2)
        p1, p2 = pids(2)
        system.scheduler.run_solo_until_halt(p1)
        adversary = RandomAdversary(0)
        assert all(
            adversary.choose(system.scheduler) == p2 for _ in range(10)
        )


class TestBurst:
    def test_bursts_repeat_same_process(self):
        system = consensus_system(3)
        adversary = AlternatingBurstAdversary(seed=1, max_burst=5)
        chosen = [adversary.choose(system.scheduler) for _ in range(30)]
        # Bursty: consecutive repeats must occur somewhere in 30 picks.
        assert any(a == b for a, b in zip(chosen, chosen[1:]))

    def test_deterministic_per_seed(self):
        s1, s2 = consensus_system(3), consensus_system(3)
        a1 = AlternatingBurstAdversary(seed=2)
        a2 = AlternatingBurstAdversary(seed=2)
        assert [a1.choose(s1.scheduler) for _ in range(25)] == [
            a2.choose(s2.scheduler) for _ in range(25)
        ]


class TestFixedSchedule:
    def test_replays_and_stops(self):
        system = consensus_system(2)
        p1, p2 = pids(2)
        adversary = FixedScheduleAdversary([p1, p1, p2])
        trace = system.run(adversary, max_steps=100)
        assert [e.pid for e in trace.events] == [p1, p1, p2]
        assert trace.stop_reason == "adversary-stop"

    def test_raises_when_scheduled_process_disabled(self):
        system = consensus_system(2)
        p1, _ = pids(2)
        system.scheduler.run_solo_until_halt(p1)
        adversary = FixedScheduleAdversary([p1])
        with pytest.raises(SchedulingError):
            adversary.choose(system.scheduler)


class TestSoloAndStaged:
    def test_solo_only_ever_chooses_its_process(self):
        system = consensus_system(2)
        p1, _ = pids(2)
        trace = system.run(SoloAdversary(p1), max_steps=50_000)
        assert {e.pid for e in trace.events} == {p1}
        assert p1 in trace.halt_seq

    def test_staged_obstruction_finishes_everyone(self):
        system = consensus_system(3)
        adversary = StagedObstructionAdversary(prefix_steps=30, seed=1)
        trace = system.run(adversary, max_steps=100_000)
        assert trace.all_halted()

    def test_staged_prefix_interleaves(self):
        system = consensus_system(3)
        adversary = StagedObstructionAdversary(prefix_steps=30, seed=1)
        trace = system.run(adversary, max_steps=100_000)
        prefix_pids = {e.pid for e in trace.events[:30]}
        assert len(prefix_pids) > 1

    def test_staged_solo_order_respected(self):
        system = consensus_system(2)
        p1, p2 = pids(2)
        adversary = StagedObstructionAdversary(
            prefix_steps=0, solo_order=[p2, p1]
        )
        trace = system.run(adversary, max_steps=50_000)
        assert trace.events[0].pid == p2


class TestCrashAdversary:
    def test_crashes_at_scheduled_step(self):
        system = consensus_system(3)
        p1, _, _ = pids(3)
        adversary = CrashAdversary(
            StagedObstructionAdversary(prefix_steps=10, seed=0), {p1: 5}
        )
        trace = system.run(adversary, max_steps=100_000)
        assert p1 in trace.crash_seq
        # Survivors still decide (crash = obstruction-free tolerable when
        # the survivors get solo time).
        survivors = [p for p in pids(3) if p != p1]
        assert all(p in trace.halt_seq for p in survivors)

    def test_crashed_process_takes_no_further_steps(self):
        system = consensus_system(2)
        p1, p2 = pids(2)
        adversary = CrashAdversary(RoundRobinAdversary(), {p1: 4})
        trace = system.run(adversary, max_steps=200)
        late_steps = [e for e in trace.events if e.pid == p1 and e.seq >= 4]
        assert late_steps == []


class TestStandardBattery:
    def test_contains_multiple_strategies(self):
        battery = standard_adversaries(range(2))
        kinds = {type(a).__name__ for a in battery}
        assert {
            "RoundRobinAdversary",
            "RandomAdversary",
            "AlternatingBurstAdversary",
            "StagedObstructionAdversary",
        } <= kinds

    def test_describe_is_informative(self):
        for adversary in standard_adversaries(range(1)):
            assert type(adversary).__name__.replace("Adversary", "") in adversary.describe()
