"""Unit tests for the operation vocabulary."""

from repro.runtime.ops import (
    CritOp,
    EnterCritOp,
    ExitCritOp,
    NoOp,
    ReadOp,
    WriteOp,
    is_read,
    is_write,
)


class TestOperationTypes:
    def test_read_op_carries_index(self):
        assert ReadOp(3).index == 3

    def test_write_op_carries_index_and_value(self):
        op = WriteOp(2, "v")
        assert (op.index, op.value) == (2, "v")

    def test_ops_are_hashable(self):
        ops = {ReadOp(1), WriteOp(1, 0), CritOp(), EnterCritOp(), ExitCritOp(), NoOp()}
        assert len(ops) == 6

    def test_ops_equality_by_fields(self):
        assert ReadOp(1) == ReadOp(1)
        assert WriteOp(1, "a") != WriteOp(1, "b")

    def test_str_renderings(self):
        assert str(ReadOp(0)) == "read(p[0])"
        assert str(WriteOp(2, 9)) == "write(p[2] := 9)"
        assert str(EnterCritOp()) == "enter-CS"
        assert str(ExitCritOp()) == "exit-CS"
        assert str(CritOp()) == "in-CS"
        assert str(NoOp()) == "no-op"


class TestClassifiers:
    def test_is_write_true_only_for_writes(self):
        assert is_write(WriteOp(0, 1))
        assert not is_write(ReadOp(0))
        assert not is_write(CritOp())

    def test_is_read_true_only_for_reads(self):
        assert is_read(ReadOp(0))
        assert not is_read(WriteOp(0, 1))
        assert not is_read(EnterCritOp())
