"""Unit tests for the canonical state encoding and symmetry group."""

import pickle
import random
from dataclasses import dataclass

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.memory.naming import RingNaming
from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.canonical import (
    SYMMETRY_HOOKS,
    TrivialCanonicalizer,
    build_canonicalizer,
    hook_owner,
    stable_encode,
)
from repro.runtime.system import System

from tests.conftest import pids
from tests.lint.mutants import MutantAlgorithm, PidArithmeticProcess


def mutex_system(m=3, naming=None, **kwargs):
    return System(
        AnonymousMutex(m=m, cs_visits=1, **kwargs),
        pids(2),
        naming=naming,
        record_trace=False,
    )


def consensus_system(n=2, inputs=None, registers=None):
    if inputs is None:
        inputs = {pid: f"v{k}" for k, pid in enumerate(pids(n))}
    return System(
        AnonymousConsensus(n=n, registers=registers), inputs, record_trace=False
    )


class TestHookOwnership:
    def test_shipped_automata_have_trusted_owners(self):
        from repro.core.renaming import AnonymousRenaming

        for algorithm in (
            AnonymousMutex(m=3),
            AnonymousConsensus(n=2),
            AnonymousRenaming(n=2),
        ):
            automaton = algorithm.automaton_for(101, "v")
            cls = type(automaton)
            assert hook_owner(cls) is cls

    def test_base_defaults_are_not_trusted(self):
        assert hook_owner(ProcessAutomaton) is None

    def test_subclass_overriding_behaviour_kills_trust(self):
        # A subclass that tweaks any behaviour method may invalidate the
        # semantic claims the parent's hooks make.
        base = type(AnonymousMutex(m=3).automaton_for(101, None))

        class Tweaked(base):
            def next_op(self, state):
                return super().next_op(state)

        assert hook_owner(base) is base
        assert hook_owner(Tweaked) is None

    def test_partial_hook_bundle_is_not_trusted(self):
        class Partial(ProcessAutomaton):
            def state_footprint(self, state):
                return state

        assert len(SYMMETRY_HOOKS) == 4
        assert hook_owner(Partial) is None

    def test_mutants_degrade_to_trivial(self):
        system = System(
            MutantAlgorithm(PidArithmeticProcess), pids(2), record_trace=False
        )
        canonicalizer = build_canonicalizer(system)
        assert isinstance(canonicalizer, TrivialCanonicalizer)
        assert canonicalizer.group_order == 1
        assert not canonicalizer.uses_footprints


class TestGroupConstruction:
    def test_two_process_mutex_has_swap(self):
        canonicalizer = build_canonicalizer(mutex_system())
        assert canonicalizer.group_order == 2
        assert canonicalizer.uses_footprints

    def test_distinct_inputs_induce_value_renaming(self):
        # Distinct consensus inputs do not block the swap: nu is forced
        # to exchange the two input values.
        canonicalizer = build_canonicalizer(consensus_system(n=2))
        assert canonicalizer.group_order == 2

    def test_inconsistent_inputs_shrink_the_group(self):
        # Two "a" processes and one "b": only the a<->a swap survives.
        inputs = dict(zip(pids(3), ("a", "a", "b")))
        canonicalizer = build_canonicalizer(consensus_system(n=3, inputs=inputs))
        assert canonicalizer.group_order == 2

    def test_equal_inputs_give_full_symmetric_group(self):
        inputs = {pid: "same" for pid in pids(3)}
        canonicalizer = build_canonicalizer(consensus_system(n=3, inputs=inputs))
        assert canonicalizer.group_order == 6

    def test_max_group_cap_collapses_to_identity(self):
        inputs = {pid: "same" for pid in pids(3)}
        canonicalizer = build_canonicalizer(
            consensus_system(n=3, inputs=inputs), max_group=2
        )
        assert canonicalizer.group_order == 1
        assert canonicalizer.group_capped

    def test_symmetry_flag_off_gives_identity_group(self):
        canonicalizer = build_canonicalizer(mutex_system(), symmetry=False)
        assert canonicalizer.group_order == 1

    def test_ring_naming_couples_register_rotation(self):
        # Under equispaced ring naming the two processes see the four
        # registers rotated by two; the induced pi is that rotation, not
        # the identity.
        naming = RingNaming.equispaced(pids(2), 4)
        system = mutex_system(m=4, naming=naming, unsafe_allow_any_m=True)
        canonicalizer = build_canonicalizer(system)
        assert canonicalizer.group_order == 2
        (element,) = canonicalizer._elements
        assert element.source_phys != tuple(range(4))


def keys_after(system, canonicalizer, initial, schedule):
    system.scheduler.restore_state(initial)
    for pid in schedule:
        system.scheduler.step(pid)
    return canonicalizer.key_of()


class TestOrbitInvariance:
    def orbit_check(self, system, schedule, sigma):
        """Running sigma(schedule) must reach the same canonical key."""
        canonicalizer = build_canonicalizer(system)
        initial = system.scheduler.capture_state()
        key_a, raw_a = keys_after(system, canonicalizer, initial, schedule)
        key_b, raw_b = keys_after(
            system, canonicalizer, initial, [sigma[pid] for pid in schedule]
        )
        assert key_a == key_b
        return raw_a, raw_b

    def test_mutex_states_collapse_under_swap(self):
        p, q = pids(2)
        raw_a, raw_b = self.orbit_check(mutex_system(), [p, p, p], {p: q, q: p})
        # The images are genuinely different states (different writer).
        assert raw_a != raw_b

    def test_consensus_states_collapse_under_swap_with_renaming(self):
        p, q = pids(2)
        raw_a, raw_b = self.orbit_check(
            consensus_system(n=2), [p, p, p, q], {p: q, q: p}
        )
        assert raw_a != raw_b

    def test_ring_naming_states_collapse_across_physical_registers(self):
        p, q = pids(2)
        naming = RingNaming.equispaced(pids(2), 4)
        system = mutex_system(m=4, naming=naming, unsafe_allow_any_m=True)
        # p's first write lands in a different physical register than
        # q's, so the collapse exercises the register permutation.
        self.orbit_check(system, [p, p], {p: q, q: p})

    def test_asymmetric_schedules_do_not_collapse(self):
        p, q = pids(2)
        system = mutex_system()
        canonicalizer = build_canonicalizer(system)
        initial = system.scheduler.capture_state()
        key_a, _ = keys_after(system, canonicalizer, initial, [p])
        key_b, _ = keys_after(system, canonicalizer, initial, [p, p, p])
        assert key_a != key_b


class TestCompactEncoding:
    def test_trivial_keys_equal_raw_keys(self):
        system = mutex_system()
        canonicalizer = TrivialCanonicalizer(system.scheduler)
        key, raw = canonicalizer.key_of()
        assert key == raw

    def test_keys_are_stable_across_restore(self):
        system = mutex_system()
        scheduler = system.scheduler
        canonicalizer = TrivialCanonicalizer(scheduler)
        p, _ = pids(2)
        scheduler.step(p)
        snapshot = scheduler.capture_state()
        key_before, _ = canonicalizer.key_of()
        scheduler.step(p)
        scheduler.restore_state(snapshot)
        key_after, _ = canonicalizer.key_of()
        assert key_before == key_after

    def test_interning_is_injective_along_a_run(self):
        # Raw key equality must coincide with captured-state equality —
        # the seed explorer's deduplication criterion.
        system = mutex_system()
        scheduler = system.scheduler
        canonicalizer = TrivialCanonicalizer(scheduler)
        seen = {}
        p, q = pids(2)
        for step in range(60):
            pid = (p, q)[step % 2]
            if not scheduler.runtime(pid).enabled:
                break
            scheduler.step(pid)
            key, raw = canonicalizer.key_of()
            assert key == raw
            state = scheduler.capture_state()
            if key in seen:
                assert seen[key] == state
            else:
                seen[key] = state
        assert len(seen) > 10
        assert canonicalizer.interned_objects > 0

    def test_describe_mentions_group_and_footprints(self):
        description = build_canonicalizer(mutex_system()).describe()
        assert "group=2" in description
        assert "footprints=on" in description


@dataclass(frozen=True)
class _Point:
    x: int
    y: int


@dataclass(frozen=True)
class _Pair:
    x: int
    y: int


class TestStableEncode:
    """The content-addressed encoding under the digest layer.

    Key equality across OS processes (what the parallel backend relies
    on) needs the encoding to be a pure function of value *content* and
    injective across the value shapes the model traffics in.
    """

    def test_container_shapes_never_collide(self):
        values = [12, "12", (1, 2), [1, 2], ("12",), ("1", "2"), b"12",
                  frozenset({1, 2}), {1: 2}, 12.0, None]
        encodings = [stable_encode(value) for value in values]
        assert len(set(encodings)) == len(encodings)

    def test_bool_is_not_int(self):
        assert stable_encode(True) != stable_encode(1)
        assert stable_encode(False) != stable_encode(0)

    def test_unordered_containers_encode_order_free(self):
        assert stable_encode({3, 1, 2}) == stable_encode({2, 3, 1})
        assert stable_encode({"a": 1, "b": 2}) == stable_encode(
            dict([("b", 2), ("a", 1)])
        )

    def test_length_delimiting_blocks_boundary_shifts(self):
        assert stable_encode(("ab", "c")) != stable_encode(("a", "bc"))
        assert stable_encode((1, (2,))) != stable_encode(((1,), 2))

    def test_dataclasses_encode_class_and_fields(self):
        assert stable_encode(_Point(1, 2)) == stable_encode(_Point(1, 2))
        assert stable_encode(_Point(1, 2)) != stable_encode(_Point(2, 1))
        # Same field values, different class: distinct states.
        assert stable_encode(_Point(1, 2)) != stable_encode(_Pair(1, 2))

    def test_encoding_is_reproducible(self):
        nested = {"k": [(_Point(1, 2), frozenset({"a", "b"})), None, True]}
        rebuilt = {"k": [(_Point(1, 2), frozenset({"b", "a"})), None, True]}
        assert stable_encode(nested) == stable_encode(rebuilt)


class TestCanonicalizerPickling:
    """Workers receive canonicalizers by pickle and key value states."""

    def test_round_trip_keys_match_on_a_walk(self):
        system = mutex_system()
        canonicalizer = build_canonicalizer(system)
        copy = pickle.loads(pickle.dumps(canonicalizer))
        assert copy.group_order == canonicalizer.group_order
        assert copy.uses_footprints == canonicalizer.uses_footprints
        scheduler = system.scheduler
        rng = random.Random(19)
        for _ in range(80):
            state = scheduler.capture_state()
            assert copy.key_of_state(state) == canonicalizer.key_of_state(state)
            # The live canonicalizer's two entry points agree too.
            assert canonicalizer.key_of() == canonicalizer.key_of_state(state)
            enabled = scheduler.enabled_pids()
            if not enabled:
                break
            scheduler.step(rng.choice(enabled))

    def test_unpickled_copy_refuses_the_live_entry_point(self):
        import pytest

        copy = pickle.loads(pickle.dumps(build_canonicalizer(mutex_system())))
        with pytest.raises(RuntimeError, match="use key_of_state"):
            copy.key_of()

    def test_fresh_canonicalizers_agree_on_keys(self):
        # Content addressing: no interning-order dependence.  Two
        # canonicalizers that digest states in different orders must
        # still emit identical keys for identical states.
        system_a, system_b = mutex_system(), mutex_system()
        canon_a = build_canonicalizer(system_a)
        canon_b = build_canonicalizer(system_b)
        p, q = pids(2)
        # Walk A forward, then key the shared schedule's states; walk B
        # keys them cold, in reverse.
        schedule = [p, q, p, q, q, p, p, q]
        states = []
        for pid in schedule:
            system_a.scheduler.step(pid)
            states.append(system_a.scheduler.capture_state())
        keys_a = [canon_a.key_of_state(state) for state in states]
        keys_b = list(reversed(
            [canon_b.key_of_state(state) for state in reversed(states)]
        ))
        assert keys_a == keys_b
