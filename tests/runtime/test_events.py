"""Unit tests for events, traces and trace queries."""

from repro.core.mutex import AnonymousMutex
from repro.runtime.adversary import RandomAdversary, RoundRobinAdversary
from repro.runtime.events import (
    CriticalSectionInterval,
    Event,
    Trace,
    subsequence_equal,
)
from repro.runtime.ops import EnterCritOp, ExitCritOp, ReadOp, WriteOp
from repro.runtime.system import System

from tests.conftest import pids


def make_trace(events):
    trace = Trace(pids=pids(2), register_count=3, initial_values=(0, 0, 0))
    for event in events:
        trace.append(event)
    return trace


class TestEvent:
    def test_is_write_and_is_read(self):
        write = Event(0, 101, WriteOp(0, 5), physical_index=0)
        read = Event(1, 101, ReadOp(0), physical_index=0, result=5)
        assert write.is_write() and not write.is_read()
        assert read.is_read() and not read.is_write()

    def test_str_includes_physical_register_and_result(self):
        event = Event(3, 101, ReadOp(1), physical_index=2, result=7)
        rendered = str(event)
        assert "p101" in rendered and "@R2" in rendered and "-> 7" in rendered


class TestTraceQueries:
    def test_events_by_filters_by_pid(self):
        p1, p2 = pids(2)
        trace = make_trace(
            [
                Event(0, p1, ReadOp(0), 0, 0),
                Event(1, p2, ReadOp(0), 0, 0),
                Event(2, p1, WriteOp(0, p1), 0),
            ]
        )
        assert len(trace.events_by(p1)) == 2
        assert len(trace.events_by(p2)) == 1

    def test_registers_written_by_dedupes_and_keeps_order(self):
        p1, _ = pids(2)
        trace = make_trace(
            [
                Event(0, p1, WriteOp(0, 1), 2),
                Event(1, p1, WriteOp(1, 1), 0),
                Event(2, p1, WriteOp(2, 1), 2),
            ]
        )
        assert trace.registers_written_by(p1) == (2, 0)

    def test_steps_taken(self):
        p1, p2 = pids(2)
        trace = make_trace(
            [Event(0, p1, ReadOp(0), 0, 0), Event(1, p1, ReadOp(1), 1, 0)]
        )
        assert trace.steps_taken(p1) == 2
        assert trace.steps_taken(p2) == 0

    def test_record_halt_and_decided(self):
        p1, _ = pids(2)
        trace = make_trace([Event(0, p1, ReadOp(0), 0, 0)])
        trace.record_halt(p1, "value")
        assert trace.outputs[p1] == "value"
        assert trace.decided() == {p1: "value"}
        assert trace.halt_seq[p1] == 0

    def test_all_halted_accounts_for_crashes(self):
        p1, p2 = pids(2)
        trace = make_trace([Event(0, p1, ReadOp(0), 0, 0)])
        trace.record_halt(p1, 1)
        assert not trace.all_halted()
        trace.record_crash(p2)
        assert trace.all_halted()


class TestCriticalSectionIntervals:
    def test_intervals_extracted_in_order(self):
        p1, p2 = pids(2)
        trace = make_trace(
            [
                Event(0, p1, EnterCritOp()),
                Event(1, p1, ExitCritOp()),
                Event(2, p2, EnterCritOp()),
                Event(3, p2, ExitCritOp()),
            ]
        )
        intervals = trace.critical_section_intervals()
        assert [(iv.pid, iv.enter_seq, iv.exit_seq) for iv in intervals] == [
            (p1, 0, 1),
            (p2, 2, 3),
        ]

    def test_open_interval_when_still_inside(self):
        p1, _ = pids(2)
        trace = make_trace([Event(0, p1, EnterCritOp())])
        (interval,) = trace.critical_section_intervals()
        assert interval.exit_seq is None

    def test_overlap_detection(self):
        a = CriticalSectionInterval(101, 0, 5)
        b = CriticalSectionInterval(103, 3, 8)
        c = CriticalSectionInterval(103, 6, 9)
        assert a.overlaps(b, horizon=10)
        assert not a.overlaps(c, horizon=10)

    def test_open_interval_overlaps_to_horizon(self):
        a = CriticalSectionInterval(101, 0, None)
        b = CriticalSectionInterval(103, 99, 100)
        assert a.overlaps(b, horizon=100)

    def test_entry_count(self):
        p1, p2 = pids(2)
        trace = make_trace(
            [
                Event(0, p1, EnterCritOp()),
                Event(1, p1, ExitCritOp()),
                Event(2, p2, EnterCritOp()),
            ]
        )
        assert trace.critical_section_entries() == 2
        assert trace.critical_section_entries(p1) == 1

    def test_occupancy_profile_tracks_changes(self):
        p1, p2 = pids(2)
        trace = make_trace(
            [
                Event(0, p1, EnterCritOp()),
                Event(1, p2, EnterCritOp()),
                Event(2, p1, ExitCritOp()),
            ]
        )
        profile = trace.occupancy_profile()
        assert profile == [(0, (p1,)), (1, (p1, p2)), (2, (p2,))]


class TestRenderAndIndistinguishability:
    def test_render_mentions_events_and_outputs(self):
        system = System(AnonymousMutex(m=3), pids(2))
        trace = system.run(RandomAdversary(0), max_steps=10_000)
        rendered = trace.render(limit=5)
        assert "run:" in rendered
        assert "more events" in rendered

    def test_subsequence_equal_for_identical_runs(self):
        p1, _ = pids(2)
        s1 = System(AnonymousMutex(m=3), pids(2))
        s2 = System(AnonymousMutex(m=3), pids(2))
        t1 = s1.run(RoundRobinAdversary(), max_steps=40)
        t2 = s2.run(RoundRobinAdversary(), max_steps=40)
        assert subsequence_equal(t1, t2, p1)

    def test_subsequence_differs_across_schedules(self):
        p1, _ = pids(2)
        s1 = System(AnonymousMutex(m=3), pids(2))
        s2 = System(AnonymousMutex(m=3), pids(2))
        t1 = s1.run(RoundRobinAdversary(), max_steps=60)
        t2 = s2.run(RandomAdversary(9), max_steps=60)
        # Different interleavings generally change what p1 reads.
        assert not subsequence_equal(t1, t2, p1) or len(t1.events_by(p1)) != len(
            t2.events_by(p1)
        )
