"""Consistency between the two verdict mechanisms.

The library judges correctness twice over: *state invariants* (consumed
by the model checker, reading live scheduler state) and *trace checkers*
(consumed by experiments, reading recorded runs).  They must never
disagree: for any run, the invariant evaluated on the final state and
the corresponding checker evaluated on the trace give the same verdict.
Hypothesis drives algorithms, namings and schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consensus import AnonymousConsensus
from repro.core.renaming import AnonymousRenaming
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import (
    AlternatingBurstAdversary,
    FixedScheduleAdversary,
    RandomAdversary,
)
from repro.runtime.exploration import (
    agreement_invariant,
    explore,
    mutual_exclusion_invariant,
    unique_names_invariant,
    validity_invariant,
)
from repro.runtime.system import System
from repro.spec.consensus_spec import AgreementChecker, ValidityChecker
from repro.spec.mutex_spec import MutualExclusionChecker
from repro.spec.renaming_spec import NameRangeChecker, UniqueNamesChecker

from tests.conftest import pids


@given(
    naming_seed=st.integers(0, 200),
    seed=st.integers(0, 10_000),
    budget=st.integers(20, 3_000),
)
@settings(max_examples=25, deadline=None)
def test_consensus_verdicts_agree(naming_seed, seed, budget):
    inputs = dict(zip(pids(3), ("x", "y", "z")))
    system = System(
        AnonymousConsensus(n=3), inputs, naming=RandomNaming(naming_seed)
    )
    trace = system.run(RandomAdversary(seed), max_steps=budget)
    assert (agreement_invariant(system) is None) == AgreementChecker().holds(trace)
    assert (validity_invariant(system) is None) == ValidityChecker(inputs).holds(trace)


@given(naming_seed=st.integers(0, 200), seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_renaming_verdicts_agree(naming_seed, seed):
    system = System(
        AnonymousRenaming(n=3), pids(3), naming=RandomNaming(naming_seed)
    )
    trace = system.run(
        AlternatingBurstAdversary(seed=seed, max_burst=9), max_steps=3_000
    )
    state_ok = unique_names_invariant(system) is None
    trace_ok = (
        UniqueNamesChecker().holds(trace) and NameRangeChecker(3).holds(trace)
    )
    assert state_ok == trace_ok


def test_mutex_violation_agrees_between_explorer_and_trace_checker():
    """The explorer's violating schedule, replayed with tracing on, must
    also fail the trace-level mutual exclusion checker."""
    probe = System(NaiveTestAndSetLock(), pids(2), record_trace=False)
    result = explore(probe, mutual_exclusion_invariant)
    assert result.violation is not None

    replay = System(NaiveTestAndSetLock(cs_steps=2), pids(2))
    trace = replay.run(
        FixedScheduleAdversary(result.violation_schedule), max_steps=10_000
    )
    assert not MutualExclusionChecker().holds(trace)


def test_clean_exploration_implies_clean_sampled_traces():
    """If exhaustive search finds no violation, no sampled trace of the
    same instance may fail the corresponding trace checker."""
    inputs = {101: "a", 103: "b"}
    probe = System(AnonymousConsensus(n=2), inputs, record_trace=False)
    result = explore(probe, agreement_invariant)
    assert result.complete and result.ok

    for seed in range(10):
        system = System(AnonymousConsensus(n=2), inputs)
        trace = system.run(RandomAdversary(seed), max_steps=5_000)
        assert AgreementChecker().holds(trace)
