"""Property-based well-formedness invariants of recorded traces.

Whatever the algorithm, naming and schedule, every trace the scheduler
produces must satisfy structural invariants: sequence numbers are dense,
physical indices are consistent with the naming, read results equal the
last written value, critical-section intervals nest properly, halts come
with outputs.  Hypothesis drives the configuration space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import (
    AlternatingBurstAdversary,
    RandomAdversary,
    StagedObstructionAdversary,
)
from repro.runtime.system import System

from tests.conftest import pids

algorithms = st.sampled_from(["mutex", "consensus", "renaming"])


def build_system(kind, naming_seed):
    naming = RandomNaming(naming_seed)
    if kind == "mutex":
        return System(AnonymousMutex(m=3, cs_visits=2), pids(2), naming=naming)
    if kind == "consensus":
        inputs = dict(zip(pids(3), ("x", "y", "z")))
        return System(AnonymousConsensus(n=3), inputs, naming=naming)
    return System(AnonymousRenaming(n=3), pids(3), naming=naming)


def build_adversary(adv_kind, seed):
    if adv_kind == 0:
        return RandomAdversary(seed)
    if adv_kind == 1:
        return AlternatingBurstAdversary(seed=seed, max_burst=5)
    return StagedObstructionAdversary(prefix_steps=seed % 80, seed=seed)


def assert_trace_well_formed(system, trace):
    # Dense, ordered sequence numbers.
    assert [e.seq for e in trace.events] == list(range(len(trace.events)))

    # Physical indices agree with each process's naming.
    for event in trace.events:
        if event.physical_index is not None:
            view = system.memory.view(event.pid)
            assert view.physical_index_of(event.op.index) == event.physical_index

    # Every read returns the last value written to that physical register
    # (or the initial value).
    current = list(trace.initial_values)
    for event in trace.events:
        if event.is_read():
            assert event.result == current[event.physical_index], event
        elif event.is_write():
            current[event.physical_index] = event.op.value
    if trace.final_values:
        assert tuple(current) == trace.final_values

    # Halted processes have recorded outputs and took their last step at
    # or before their halt index.
    for pid, seq in trace.halt_seq.items():
        assert pid in trace.outputs
        later = [e for e in trace.events if e.pid == pid and e.seq > seq]
        assert later == []

    # CS intervals of a single process never overlap each other.
    for pid in trace.pids:
        intervals = [
            iv for iv in trace.critical_section_intervals() if iv.pid == pid
        ]
        for first, second in zip(intervals, intervals[1:]):
            assert first.exit_seq is not None
            assert first.exit_seq < second.enter_seq


@given(
    kind=algorithms,
    naming_seed=st.integers(0, 500),
    adv_kind=st.integers(0, 2),
    seed=st.integers(0, 10_000),
    budget=st.integers(50, 4_000),
)
@settings(max_examples=40, deadline=None)
def test_every_trace_is_well_formed(kind, naming_seed, adv_kind, seed, budget):
    system = build_system(kind, naming_seed)
    trace = system.run(build_adversary(adv_kind, seed), max_steps=budget)
    assert_trace_well_formed(system, trace)


@given(seed=st.integers(0, 10_000), budget=st.integers(10, 2_000))
@settings(max_examples=20, deadline=None)
def test_replay_of_arbitrary_prefix_is_exact(seed, budget):
    from repro.runtime.replay import replay

    inputs = dict(zip(pids(3), ("x", "y", "z")))
    system = System(AnonymousConsensus(n=3), inputs, naming=RandomNaming(7))
    trace = system.run(RandomAdversary(seed), max_steps=budget)
    fresh = System(AnonymousConsensus(n=3), inputs, naming=RandomNaming(7))
    replayed = replay(trace, fresh)  # strict: raises on any divergence
    assert replayed.final_values == trace.final_values
