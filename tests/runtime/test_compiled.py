"""Differential + property validation of the table-compiled step kernel.

The compiled backend's contract is *bit-identity*: on every instance it
can compile it must reproduce the serial backend's results exactly —
verdict, counters, violation text and schedule, retained graph bytes —
at a fraction of the wall time; on everything else it must fall back to
the interpreter wholesale (``kernel == "interpreted"``) rather than
degrade semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mutex import AnonymousMutex
from repro.errors import ConfigurationError
from repro.problems import instances_with_role, problem_specs
from repro.request import RunRequest
from repro.runtime.backends import SerialBackend, resolve_backend
from repro.runtime.canonical import TrivialCanonicalizer, build_canonicalizer
from repro.runtime.compiled import CompiledBackend, compile_program
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.kernel import StepInstance, enabled_pids, step_value
from repro.runtime.system import System

from tests.conftest import pids
from tests.lint.mutants import ALL_MUTANTS, HOOKED_MUTANTS, MutantAlgorithm
from tests.runtime.test_exploration_differential import (
    SHIPPED_INSTANCES,
    VIOLATING_INSTANCES,
    null_invariant,
)


def fingerprint(result):
    """Every observable field the two backends must agree on."""
    return (
        result.ok,
        result.complete,
        result.truncated_by,
        result.violation,
        result.violation_schedule,
        result.states_explored,
        result.events_executed,
        result.max_depth_reached,
        result.stuck_states,
        result.orbits_collapsed,
        result.peak_visited,
    )


def mutex_system(m=3):
    return System(AnonymousMutex(m=m, cs_visits=1), pids(2), record_trace=False)


class TestCompiledMatchesSerial:
    @pytest.mark.parametrize(
        "factory, invariant", SHIPPED_INSTANCES + VIOLATING_INSTANCES
    )
    @pytest.mark.parametrize("reduction", ["trivial", "symmetry"])
    def test_bit_identical(self, factory, invariant, reduction):
        def run(backend):
            system = factory()
            canonicalizer = (
                TrivialCanonicalizer(system.scheduler)
                if reduction == "trivial"
                else build_canonicalizer(system)
            )
            return explore(
                system, invariant, canonicalizer=canonicalizer, backend=backend
            )

        serial = run(SerialBackend())
        compiled = run(CompiledBackend())
        assert fingerprint(serial) == fingerprint(compiled)
        assert compiled.backend == "compiled"
        assert compiled.kernel == "compiled"

    @pytest.mark.parametrize(
        "budgets",
        [dict(max_states=5_000), dict(max_depth=25)],
        ids=["max_states", "max_depth"],
    )
    def test_truncated_walks_are_bit_identical(self, budgets):
        def run(backend):
            system = mutex_system(m=5)
            return explore(
                system,
                mutual_exclusion_invariant,
                canonicalizer=TrivialCanonicalizer(system.scheduler),
                backend=backend,
                **budgets,
            )

        serial = run(SerialBackend())
        compiled = run(CompiledBackend())
        assert not serial.complete
        assert fingerprint(serial) == fingerprint(compiled)


VERIFY_INSTANCES = list(instances_with_role("verify", include_mutants=True))


class TestRetainedGraph:
    @pytest.mark.parametrize(
        "spec, inst",
        VERIFY_INSTANCES,
        ids=[inst.label for _, inst in VERIFY_INSTANCES],
    )
    def test_graph_bytes_identical(self, spec, inst):
        invariant = spec.invariant or null_invariant

        def run(backend):
            system = spec.system(inst)
            budget = inst.verify_max_states
            return explore(
                system,
                invariant,
                max_states=budget,
                max_depth=budget,
                backend=backend,
                retain_graph=True,
            )

        serial = run(SerialBackend())
        compiled = run(CompiledBackend())
        assert fingerprint(serial) == fingerprint(compiled)
        assert serial.graph is not None and compiled.graph is not None
        assert serial.graph.to_bytes() == compiled.graph.to_bytes()


class TestMutantsAgree:
    """The generic (no compiled suspect table) path, across every
    non-hooked lint mutant — including the two whose exploration raises,
    which the overflow path must reproduce with the same exception."""

    @pytest.mark.parametrize(
        "mutant_cls",
        [cls for cls, _pass in ALL_MUTANTS if cls not in HOOKED_MUTANTS],
        ids=[
            cls.__name__
            for cls, _pass in ALL_MUTANTS
            if cls not in HOOKED_MUTANTS
        ],
    )
    def test_mutant_exploration_is_bit_identical(self, mutant_cls):
        def build():
            return System(
                MutantAlgorithm(mutant_cls), pids(2), record_trace=False
            )

        budgets = dict(max_states=2_000, max_depth=200)
        outcomes = []
        for backend in (SerialBackend(), CompiledBackend()):
            system = build()
            try:
                result = explore(
                    system,
                    null_invariant,
                    canonicalizer=TrivialCanonicalizer(system.scheduler),
                    backend=backend,
                    **budgets,
                )
            except Exception as error:  # noqa: BLE001 — compared below
                outcomes.append(("raised", type(error).__name__))
            else:
                outcomes.append(fingerprint(result))
        assert outcomes[0] == outcomes[1]


def _compiled_mutex(m=3):
    system = mutex_system(m=m)
    instance = StepInstance.from_system(system)
    initial = system.scheduler.capture_state()
    return instance, initial, compile_program(instance, initial)


_MUTEX_PROGRAM = _compiled_mutex()


def _walk(instance, initial, choices):
    """A reachable state: follow the choice list through enabled pids."""
    state = initial
    for choice in choices:
        enabled = enabled_pids(instance, state)
        if not enabled:
            break
        state = step_value(instance, state, enabled[choice % len(enabled)])
    return state


class TestPackedStateProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=40))
    def test_pack_unpack_round_trips(self, choices):
        instance, initial, program = _MUTEX_PROGRAM
        state = _walk(instance, initial, choices)
        assert program.unpack(program.pack(state)) == state

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=40))
    def test_step_packed_agrees_with_interpreter(self, choices):
        instance, initial, program = _MUTEX_PROGRAM
        state = _walk(instance, initial, choices)
        packed = program.pack(state)
        for pid in enabled_pids(instance, state):
            slot = instance.slot_of[pid]
            assert program.step_packed(packed, slot) == program.pack(
                step_value(instance, state, pid)
            )


class TestKernelWiring:
    def test_resolve_backend_compiled(self):
        assert isinstance(resolve_backend("compiled"), CompiledBackend)

    def test_resolve_backend_unknown(self):
        with pytest.raises(
            ConfigurationError, match="unknown exploration backend"
        ):
            resolve_backend("quantum")

    def test_explore_kernel_compiled(self):
        result = explore(
            mutex_system(), mutual_exclusion_invariant, kernel="compiled"
        )
        assert result.backend == "compiled"
        assert result.kernel == "compiled"

    def test_explore_kernel_interpreted_is_the_default(self):
        result = explore(mutex_system(), mutual_exclusion_invariant)
        assert result.backend == "serial"
        assert result.kernel == "interpreted"

    def test_explore_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            explore(
                mutex_system(), mutual_exclusion_invariant, kernel="quantum"
            )

    def test_explore_kernel_compiled_rejects_parallel(self):
        with pytest.raises(ConfigurationError, match="drop-in replacement"):
            explore(
                mutex_system(),
                mutual_exclusion_invariant,
                kernel="compiled",
                backend="parallel",
            )

    def test_overflow_falls_back_to_the_interpreter(self):
        # A one-state cap defeats table compilation; the backend must
        # run the serial walk wholesale and say so in the kernel field.
        serial = explore(
            mutex_system(), mutual_exclusion_invariant, backend=SerialBackend()
        )
        result = explore(
            mutex_system(),
            mutual_exclusion_invariant,
            backend=CompiledBackend(max_local_states=1),
        )
        assert result.backend == "compiled"
        assert result.kernel == "interpreted"
        assert fingerprint(result) == fingerprint(serial)


DOMAIN_CASES = [
    (spec, inst)
    for spec in problem_specs(include_mutants=True)
    if spec.value_domain is not None
    for inst in spec.instances_with_role("verify")
]


class TestDeclaredValueDomains:
    @pytest.mark.parametrize(
        "spec, inst",
        DOMAIN_CASES,
        ids=[inst.label for _, inst in DOMAIN_CASES],
    )
    def test_discovered_domain_is_within_the_declared_one(self, spec, inst):
        declared = set(spec.value_domain(inst.params_dict()))
        system = spec.system(inst)
        program = compile_program(
            StepInstance.from_system(system), system.scheduler.capture_state()
        )
        assert set(program.values) <= declared


class TestVerifyKernel:
    def test_verify_instance_kernel_compiled_matches_interpreted(self):
        from repro.problems import get_problem
        from repro.verify import verify_instance

        spec = get_problem("figure-1-mutex")
        inst = spec.instance("figure-1-mutex(m=3)")
        interpreted = verify_instance(spec, inst)
        compiled = verify_instance(
            spec, inst, request=RunRequest(kernel="compiled")
        )
        assert compiled.exploration.kernel == "compiled"
        assert fingerprint(compiled.exploration) == fingerprint(
            interpreted.exploration
        )
        assert (
            compiled.exploration.graph.to_bytes()
            == interpreted.exploration.graph.to_bytes()
        )
        assert [o.describe() for o in compiled.outcomes] == [
            o.describe() for o in interpreted.outcomes
        ]

    def test_cli_kernel_compiled(self, capsys):
        from repro.__main__ import cmd_verify

        code = cmd_verify(
            ["--instance", "figure-1-mutex(m=3)", "--kernel", "compiled"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[OK ]" in out

    def test_cli_kernel_compiled_rejects_parallel_backend(self, capsys):
        from repro.__main__ import cmd_verify

        with pytest.raises(SystemExit):
            cmd_verify(
                [
                    "--instance",
                    "figure-1-mutex(m=3)",
                    "--kernel",
                    "compiled",
                    "--backend",
                    "parallel",
                ]
            )
