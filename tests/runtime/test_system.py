"""Unit tests for the System façade."""

import pytest

from repro.baselines import PetersonMutex
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.errors import ConfigurationError
from repro.memory.naming import IdentityNaming, RandomNaming
from repro.runtime.adversary import RandomAdversary
from repro.runtime.system import System, fresh_system

from tests.conftest import pids


class TestConstruction:
    def test_sequence_inputs_become_none_inputs(self):
        system = System(AnonymousMutex(m=3), pids(2))
        assert system.inputs == {pids(2)[0]: None, pids(2)[1]: None}

    def test_mapping_inputs_preserved(self):
        inputs = {101: "a", 103: "b"}
        system = System(AnonymousConsensus(n=2), inputs)
        assert system.inputs == inputs

    def test_register_count_from_algorithm(self):
        system = System(AnonymousConsensus(n=3), {101: 1, 103: 2, 107: 3})
        assert system.memory.size == 5  # 2n - 1

    def test_empty_participants_rejected(self):
        with pytest.raises(ConfigurationError):
            System(AnonymousMutex(m=3), [])

    def test_duplicate_pids_rejected(self):
        with pytest.raises(ConfigurationError):
            System(AnonymousMutex(m=3), [101, 101])

    def test_named_algorithm_rejects_non_identity_naming(self):
        # The heart of the model distinction: baselines need agreement.
        with pytest.raises(ConfigurationError):
            System(PetersonMutex(), pids(2), naming=RandomNaming(0))

    def test_named_algorithm_accepts_identity(self):
        system = System(PetersonMutex(), pids(2), naming=IdentityNaming())
        assert system.memory.size == 3

    def test_anonymous_algorithm_accepts_any_naming(self):
        system = System(AnonymousMutex(m=3), pids(2), naming=RandomNaming(3))
        assert system.memory.naming.describe() == "RandomNaming(seed=3)"

    def test_initial_value_from_algorithm(self):
        system = System(AnonymousConsensus(n=2), {101: 1, 103: 2})
        assert all(v.is_empty() for v in system.memory.snapshot())


class TestRun:
    def test_run_returns_trace_with_outputs(self):
        system = System(AnonymousConsensus(n=2), {101: "a", 103: "b"})
        trace = system.run(RandomAdversary(2), max_steps=50_000)
        assert set(trace.outputs) == {101, 103}

    def test_fresh_system_builds_equivalent_instance(self):
        system = fresh_system(AnonymousMutex(m=3), pids(2))
        assert isinstance(system, System)
        assert system.memory.size == 3

    def test_automata_get_their_inputs(self):
        system = System(AnonymousConsensus(n=2), {101: "left", 103: "right"})
        assert system.automata[101].input == "left"
        assert system.automata[103].input == "right"
