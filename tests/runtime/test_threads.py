"""Tests for the real-thread backend (GIL-limited realism check)."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.memory.naming import RandomNaming
from repro.runtime.threads import run_threaded, run_threaded_with_backoff

from tests.conftest import pids


class TestThreadedConsensus:
    def test_two_process_consensus_agrees(self):
        result = run_threaded_with_backoff(
            AnonymousConsensus(n=2), {101: "a", 103: "b"}, timeout=30.0
        )
        assert result.ok, (result.timed_out, result.errors)
        assert len(set(result.outputs.values())) == 1
        assert set(result.outputs.values()) <= {"a", "b"}

    def test_three_process_consensus_under_random_naming(self):
        result = run_threaded_with_backoff(
            AnonymousConsensus(n=3),
            {101: "a", 103: "b", 107: "c"},
            naming=RandomNaming(seed=4),
            timeout=30.0,
        )
        assert result.ok, (result.timed_out, result.errors)
        assert len(set(result.outputs.values())) == 1

    def test_steps_are_reported(self):
        result = run_threaded_with_backoff(
            AnonymousConsensus(n=2), {101: "a", 103: "b"}, timeout=30.0
        )
        assert all(steps > 0 for steps in result.steps.values())


class TestThreadedMutex:
    def test_two_process_mutex_completes_visits(self):
        result = run_threaded_with_backoff(
            AnonymousMutex(m=3, cs_visits=3), pids(2), timeout=30.0
        )
        assert result.ok, (result.timed_out, result.errors)
        assert all(v == 3 for v in result.outputs.values())


class TestThreadedRenaming:
    def test_names_are_unique_and_in_range(self):
        result = run_threaded_with_backoff(
            AnonymousRenaming(n=3), pids(3), timeout=30.0
        )
        assert result.ok, (result.timed_out, result.errors)
        names = sorted(result.outputs.values())
        assert names == sorted(set(names))
        assert all(1 <= name <= 3 for name in names)


class TestBackoffUnderForcedContention:
    """Deterministic-seed check: backoff lets Figure 2 terminate even when
    every thread is forced to back off frequently (interval 25 steps)."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_figure2_consensus_terminates_with_aggressive_backoff(self, seed):
        from repro.runtime.system import System
        from repro.runtime.threads import ThreadRunner

        inputs = {101: "a", 103: "b", 107: "c"}
        system = System(
            AnonymousConsensus(n=3),
            inputs,
            naming=RandomNaming(seed=seed),
            locked=True,
            record_trace=False,
        )
        runner = ThreadRunner(
            system,
            max_steps=500_000,
            backoff=0.0002,
            backoff_interval=25,
            seed=seed,
        )
        result = runner.run(timeout=30.0)
        assert result.ok, (result.timed_out, result.errors)
        decisions = set(result.outputs.values())
        assert len(decisions) == 1
        assert decisions <= set(inputs.values())

    def test_seeded_helper_terminates(self):
        result = run_threaded_with_backoff(
            AnonymousConsensus(n=3),
            {101: "a", 103: "b", 107: "c"},
            naming=RandomNaming(seed=9),
            timeout=30.0,
            backoff=0.0002,
            seed=9,
        )
        assert result.ok, (result.timed_out, result.errors)
        assert len(set(result.outputs.values())) == 1


class TestTimeoutHandling:
    def test_tiny_step_budget_reports_error_not_hang(self):
        result = run_threaded(
            AnonymousConsensus(n=2), {101: "a", 103: "b"},
            timeout=10.0, max_steps=3,
        )
        assert not result.ok
        assert result.errors or result.timed_out
