"""Unit tests for the bounded exhaustive model checker."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.errors import ExplorationLimitExceeded
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    explore,
    mutual_exclusion_invariant,
    unique_names_invariant,
    validity_invariant,
)
from repro.runtime.system import System

from tests.conftest import pids


class TestExploreMechanics:
    def test_single_process_exploration_is_linear(self):
        system = System(
            AnonymousConsensus(n=1), {101: "v"}, record_trace=False
        )
        result = explore(system, agreement_invariant)
        assert result.complete
        assert result.ok
        # One process => one schedule => states form a single chain.
        assert result.states_explored == result.max_depth_reached + 1

    def test_truncation_by_max_states(self):
        system = System(AnonymousMutex(m=3, cs_visits=2), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant, max_states=50)
        assert not result.complete
        assert result.truncated_by == "max_states"

    def test_truncation_by_max_depth(self):
        system = System(AnonymousMutex(m=3, cs_visits=2), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant, max_depth=5)
        assert not result.complete
        assert result.truncated_by == "max_depth"

    def test_raise_on_truncation(self):
        system = System(AnonymousMutex(m=3, cs_visits=2), pids(2), record_trace=False)
        with pytest.raises(ExplorationLimitExceeded):
            explore(
                system,
                mutual_exclusion_invariant,
                max_states=10,
                raise_on_truncation=True,
            )

    def test_summary_mentions_status(self):
        system = System(AnonymousConsensus(n=1), {101: "v"}, record_trace=False)
        result = explore(system, agreement_invariant)
        assert "exhaustive-ok" in result.summary()
        assert "truncated" not in result.summary()

    def test_summary_reports_truncation_budget(self):
        system = System(AnonymousMutex(m=3, cs_visits=2), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant, max_depth=5)
        assert "truncated by max_depth" in result.summary()
        fresh = System(AnonymousMutex(m=3, cs_visits=2), pids(2), record_trace=False)
        result = explore(fresh, mutual_exclusion_invariant, max_states=10)
        assert "truncated by max_states" in result.summary()

    def test_summary_reports_stuck_states(self):
        from repro.runtime.exploration import ExplorationResult

        result = ExplorationResult(
            complete=True,
            states_explored=4,
            events_executed=3,
            max_depth_reached=2,
            stuck_states=2,
        )
        assert "2 stuck states" in result.summary()


class TestExploreFindsViolations:
    def test_naive_lock_mutual_exclusion_violation_found(self):
        # The naive test-and-set lock is broken even for two processes;
        # exhaustive search must find the bad interleaving.
        system = System(NaiveTestAndSetLock(), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant)
        assert result.violation is not None
        assert "critical section" in result.violation
        assert result.violation_schedule is not None

    def test_violation_schedule_replays_to_the_violation(self):
        system = System(NaiveTestAndSetLock(), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant)
        replay = System(NaiveTestAndSetLock(), pids(2), record_trace=False)
        for pid in result.violation_schedule:
            replay.scheduler.step(pid)
        assert mutual_exclusion_invariant(replay) is not None


class TestStockInvariants:
    def test_agreement_invariant_passes_on_consistent_outputs(self):
        system = System(AnonymousConsensus(n=1), {101: "v"}, record_trace=False)
        system.scheduler.run_solo_until_halt(101)
        assert agreement_invariant(system) is None

    def test_validity_invariant_detects_foreign_value(self):
        system = System(AnonymousConsensus(n=1), {101: "v"}, record_trace=False)
        system.scheduler.run_solo_until_halt(101)
        system.inputs = {101: "other"}  # falsify the inputs post hoc
        assert validity_invariant(system) is not None

    def test_unique_names_invariant_passes_when_nobody_finished(self):
        from repro.core.renaming import AnonymousRenaming

        system = System(AnonymousRenaming(n=2), pids(2), record_trace=False)
        assert unique_names_invariant(system) is None

    def test_conjoin_reports_first_failure(self):
        def ok(_):
            return None

        def bad(_):
            return "problem"

        assert conjoin(ok, bad)(None) == "problem"
        assert conjoin(ok, ok)(None) is None
