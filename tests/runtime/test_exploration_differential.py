"""Differential validation of the symmetry-reduced explorer.

The quotient walk must be an *observational no-op*: on every instance —
shipped algorithms, broken candidates, and all the lint mutants — it
must reach exactly the ok/violation verdict of the seed explorer
(raw-state deduplication, reproduced here by an explicit
:class:`TrivialCanonicalizer`), with any reported violation schedule
replaying to a real violation on a fresh system.
"""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.memory.naming import RingNaming
from repro.runtime.canonical import TrivialCanonicalizer, build_canonicalizer
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    explore,
    mutual_exclusion_invariant,
    unique_names_invariant,
    validity_invariant,
)
from repro.runtime.replay import replay_schedule
from repro.runtime.system import System

from tests.conftest import pids
from tests.lint.mutants import ALL_MUTANTS, HOOKED_MUTANTS, MutantAlgorithm

consensus_invariant = conjoin(agreement_invariant, validity_invariant)


def seed_explore(system, invariant, **budgets):
    """The seed explorer's semantics: raw-state deduplication only."""
    return explore(
        system,
        invariant,
        canonicalizer=TrivialCanonicalizer(system.scheduler),
        **budgets,
    )


def reduced_explore(system, invariant, **budgets):
    """The quotient walk through the unified entrypoint."""
    return explore(system, invariant, reduction="symmetry", **budgets)


def null_invariant(_system):
    return None


SHIPPED_INSTANCES = [
    pytest.param(
        lambda: System(
            AnonymousMutex(m=3, cs_visits=1), pids(2), record_trace=False
        ),
        mutual_exclusion_invariant,
        id="mutex-m3",
    ),
    pytest.param(
        lambda: System(
            AnonymousMutex(m=5, cs_visits=1), pids(2), record_trace=False
        ),
        mutual_exclusion_invariant,
        id="mutex-m5",
    ),
    pytest.param(
        lambda: System(
            AnonymousMutex(m=4, cs_visits=1, unsafe_allow_any_m=True),
            pids(2),
            naming=RingNaming.equispaced(pids(2), 4),
            record_trace=False,
        ),
        mutual_exclusion_invariant,
        id="mutex-m4-ring",
    ),
    pytest.param(
        lambda: System(
            AnonymousConsensus(n=2),
            {pid: f"v{k}" for k, pid in enumerate(pids(2))},
            record_trace=False,
        ),
        consensus_invariant,
        id="consensus-n2-distinct",
    ),
    pytest.param(
        lambda: System(
            AnonymousConsensus(n=2),
            {pid: "same" for pid in pids(2)},
            record_trace=False,
        ),
        consensus_invariant,
        id="consensus-n2-equal",
    ),
    pytest.param(
        lambda: System(AnonymousRenaming(n=2), pids(2), record_trace=False),
        unique_names_invariant,
        id="renaming-n2",
    ),
]

VIOLATING_INSTANCES = [
    pytest.param(
        lambda: System(NaiveTestAndSetLock(), pids(2), record_trace=False),
        mutual_exclusion_invariant,
        id="naive-lock",
    ),
    pytest.param(
        # Theorem 6.3 territory: one register cannot support 2-process
        # consensus — and this instance runs with the swap group active.
        lambda: System(
            AnonymousConsensus(n=2, registers=1),
            {pid: f"v{k}" for k, pid in enumerate(pids(2))},
            record_trace=False,
        ),
        consensus_invariant,
        id="consensus-1-register",
    ),
]


class TestShippedInstancesAgree:
    @pytest.mark.parametrize("factory, invariant", SHIPPED_INSTANCES)
    def test_same_verdict_with_fewer_states(self, factory, invariant):
        seed = seed_explore(factory(), invariant)
        reduced = reduced_explore(factory(), invariant)
        assert seed.complete and reduced.complete
        assert seed.ok and reduced.ok
        assert reduced.states_explored <= seed.states_explored
        # The engine must actually have engaged on the shipped automata.
        assert reduced.group_size >= 2
        assert reduced.orbits_collapsed > 0


class TestViolationsAgree:
    @pytest.mark.parametrize("factory, invariant", VIOLATING_INSTANCES)
    def test_both_engines_find_the_violation(self, factory, invariant):
        seed = seed_explore(factory(), invariant)
        reduced = reduced_explore(factory(), invariant)
        assert not seed.ok and not reduced.ok
        assert seed.truncated_by == "violation"
        assert reduced.truncated_by == "violation"

    @pytest.mark.parametrize("factory, invariant", VIOLATING_INSTANCES)
    def test_reduced_schedule_replays_to_a_violation(self, factory, invariant):
        reduced = reduced_explore(factory(), invariant)
        assert reduced.violation_schedule is not None
        fresh = factory()
        replay_schedule(fresh, reduced.violation_schedule)
        assert invariant(fresh) is not None


class TestMutantsAgree:
    """The trust gate must make the mutants behave *identically*.

    Every lint mutant here subclasses a hook-less base (or overrides
    behaviour), so :func:`build_canonicalizer` degrades to the trivial
    canonicalizer and the two walks must coincide step for step —
    including the two mutants whose exploration raises.  The
    ``HOOKED_MUTANTS`` are excluded: they deliberately carry a trusted
    but lying hook bundle, which the footprint pass rejects statically
    before exploration is ever attempted.
    """

    @pytest.mark.parametrize(
        "mutant_cls",
        [cls for cls, _pass in ALL_MUTANTS if cls not in HOOKED_MUTANTS],
        ids=[
            cls.__name__
            for cls, _pass in ALL_MUTANTS
            if cls not in HOOKED_MUTANTS
        ],
    )
    def test_mutant_exploration_is_bit_identical(self, mutant_cls):
        def build():
            return System(
                MutantAlgorithm(mutant_cls), pids(2), record_trace=False
            )

        budgets = dict(max_states=2_000, max_depth=200)
        outcomes = []
        for engine in (seed_explore, reduced_explore):
            system = build()
            if engine is reduced_explore:
                assert isinstance(
                    build_canonicalizer(system), TrivialCanonicalizer
                )
            try:
                result = engine(system, null_invariant, **budgets)
            except Exception as error:  # noqa: BLE001 — compared below
                outcomes.append(("raised", type(error).__name__))
            else:
                outcomes.append(
                    (
                        result.ok,
                        result.complete,
                        result.truncated_by,
                        result.states_explored,
                        result.events_executed,
                    )
                )
        assert outcomes[0] == outcomes[1]
