"""Unit tests for the value-state transition kernel.

The kernel's contract is *semantic identity* with the stateful
:class:`~repro.runtime.scheduler.Scheduler`: the pure
:func:`~repro.runtime.kernel.step_state` must produce, step for step,
the states and event metadata a live scheduler produces, while never
mutating anything.  These tests pin that contract directly (the
backend differentials in ``test_backends.py`` pin it transitively at
exploration scale).
"""

import pickle
import random

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.errors import ProtocolError, SchedulingError
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    mutual_exclusion_invariant,
    validity_invariant,
)
from repro.runtime.kernel import (
    StateView,
    StepInstance,
    all_settled,
    enabled_pids,
    step_state,
    step_value,
)
from repro.runtime.system import System

from tests.conftest import pids


def mutex_system(m=3, **kwargs):
    return System(
        AnonymousMutex(m=m, cs_visits=1), pids(2), record_trace=False, **kwargs
    )


def consensus_system(n=2):
    return System(
        AnonymousConsensus(n=n),
        {pid: f"v{k}" for k, pid in enumerate(pids(n))},
        record_trace=False,
    )


SYSTEMS = [
    pytest.param(mutex_system, id="mutex"),
    pytest.param(consensus_system, id="consensus"),
]


class TestStepStateParity:
    """step_state ≡ Scheduler.step, state and metadata alike."""

    @pytest.mark.parametrize("factory", SYSTEMS)
    def test_random_walk_matches_scheduler(self, factory):
        system = factory()
        scheduler = system.scheduler
        instance = StepInstance.from_system(system)
        state = scheduler.capture_state()
        rng = random.Random(11)
        for _ in range(300):
            enabled = scheduler.enabled_pids()
            assert enabled_pids(instance, state) == enabled
            if not enabled:
                break
            pid = rng.choice(enabled)
            state, meta = step_state(instance, state, pid)
            event = scheduler.step(pid)
            assert state == scheduler.capture_state()
            assert meta.pid == event.pid
            assert meta.op == event.op
            assert meta.physical_index == event.physical_index
            assert meta.result == event.result
            assert meta.halted == scheduler.runtime(pid).halted

    def test_step_state_is_pure(self):
        system = mutex_system()
        instance = StepInstance.from_system(system)
        state = system.scheduler.capture_state()
        frozen = pickle.dumps(state)
        successor, _ = step_state(instance, state, pids(1)[0])
        assert successor != state
        assert pickle.dumps(state) == frozen
        # The live system was never touched either.
        assert system.scheduler.capture_state() == state

    def test_step_value_drops_only_the_meta(self):
        system = mutex_system()
        instance = StepInstance.from_system(system)
        state = system.scheduler.capture_state()
        p = pids(1)[0]
        via_meta, _ = step_state(instance, state, p)
        assert step_value(instance, state, p) == via_meta


class TestStepStateErrors:
    def test_unknown_pid(self):
        system = mutex_system()
        instance = StepInstance.from_system(system)
        state = system.scheduler.capture_state()
        with pytest.raises(SchedulingError, match="unknown process id"):
            step_state(instance, state, 999)

    def test_halted_and_crashed_refuse_to_step(self):
        system = mutex_system()
        scheduler = system.scheduler
        p, q = pids(2)
        scheduler.crash(q)
        scheduler.run_solo_until_halt(p)
        instance = StepInstance.from_system(system)
        state = scheduler.capture_state()
        with pytest.raises(SchedulingError, match="halted"):
            step_state(instance, state, p)
        with pytest.raises(SchedulingError, match="crashed"):
            step_state(instance, state, q)

    def test_out_of_range_register_is_a_protocol_error(self):
        # Same contract (and message shape) as the live scheduler: a
        # register number past the process's view is the algorithm's
        # bug, not a scheduling accident.
        system = mutex_system()
        instance = StepInstance.from_system(system)
        state = system.scheduler.capture_state()
        p = pids(1)[0]
        instance.permutations[p] = instance.permutations[p][:1]
        with pytest.raises(ProtocolError, match="out of range"):
            for _ in range(20):
                state = step_value(instance, state, p)


class TestSettling:
    def test_all_settled_matches_scheduler(self):
        system = mutex_system()
        scheduler = system.scheduler
        p, q = pids(2)
        assert not scheduler.all_settled()
        assert not all_settled(scheduler.capture_state())
        scheduler.run_solo_until_halt(p)
        scheduler.run_solo_until_halt(q)
        assert scheduler.all_settled()
        assert all_settled(scheduler.capture_state())

    def test_crashed_processes_count_as_settled(self):
        # "Settled" is a final *status* — halted or crashed — not a
        # success: a crash-terminated run is settled, and the explorers'
        # stuck counter (terminal but unsettled) stays at zero.
        system = mutex_system()
        scheduler = system.scheduler
        p, q = pids(2)
        scheduler.crash(q)
        assert not scheduler.all_settled()
        scheduler.run_solo_until_halt(p)
        assert scheduler.all_halted()
        assert scheduler.all_settled()
        assert all_settled(scheduler.capture_state())

    def test_settled_coincides_with_terminal_in_this_model(self):
        # The invariant the explorers' defensive stuck counter guards:
        # enabled ⟺ neither halted nor crashed, so "nobody runnable"
        # and "everyone reached a final status" agree at every state.
        system = mutex_system()
        scheduler = system.scheduler
        rng = random.Random(7)
        p, q = pids(2)
        scheduler.crash(q)
        for _ in range(200):
            assert scheduler.all_halted() == scheduler.all_settled()
            assert (
                all_settled(scheduler.capture_state())
                == scheduler.all_settled()
            )
            enabled = scheduler.enabled_pids()
            if not enabled:
                break
            scheduler.step(rng.choice(enabled))


class TestStateView:
    def test_duck_types_the_system_surface(self):
        system = consensus_system()
        instance = StepInstance.from_system(system)
        view = StateView(instance, system.scheduler.capture_state())
        # Both invariant spellings must hit the same object.
        assert view.scheduler is view
        assert view.inputs == system.inputs
        assert view.pids == system.scheduler.pids
        assert view.enabled_pids() == system.scheduler.enabled_pids()
        assert not view.all_halted()
        assert not view.all_settled()
        assert view.outputs() == {}
        for pid, runtime in view.runtimes():
            assert runtime.enabled
            assert runtime.state == system.scheduler.runtime(pid).state
        with pytest.raises(SchedulingError, match="unknown process id"):
            view.runtime(999)
        with pytest.raises(SchedulingError, match="has not halted"):
            view.output_of(pids(1)[0])

    def test_stock_invariants_agree_with_the_live_system(self):
        system = consensus_system()
        scheduler = system.scheduler
        instance = StepInstance.from_system(system)
        invariant = conjoin(agreement_invariant, validity_invariant)

        def check_both():
            view = StateView(instance, scheduler.capture_state())
            assert invariant(view) == invariant(system)

        rng = random.Random(3)
        check_both()
        for _ in range(100):
            enabled = scheduler.enabled_pids()
            if not enabled:
                break
            scheduler.step(rng.choice(enabled))
            check_both()
        view = StateView(instance, scheduler.capture_state())
        assert view.outputs() == scheduler.outputs()
        for pid in scheduler.pids:
            if scheduler.runtime(pid).halted:
                assert view.output_of(pid) == scheduler.output_of(pid)

    def test_mutex_invariant_reads_the_view(self):
        system = mutex_system()
        instance = StepInstance.from_system(system)
        view = StateView(instance, system.scheduler.capture_state())
        assert mutual_exclusion_invariant(view) is None


class TestStepInstancePickling:
    def test_round_trip_preserves_transitions(self):
        system = mutex_system()
        instance = StepInstance.from_system(system)
        copy = pickle.loads(pickle.dumps(instance))
        assert copy.pid_order == instance.pid_order
        assert copy.slot_of == instance.slot_of
        assert copy.permutations == instance.permutations
        assert copy.inputs == instance.inputs
        state = system.scheduler.capture_state()
        p, q = pids(2)
        for pid in (p, q, p, p, q):
            original, meta_a = step_state(instance, state, pid)
            copied, meta_b = step_state(copy, state, pid)
            assert original == copied
            assert meta_a == meta_b
            state = original
