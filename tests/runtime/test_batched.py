"""Unit tests for the batched packed-state core's primitives.

The integration surface (verdict/counter/graph identity against the
serial walk) is pinned by ``test_backends.py`` and
``test_parallel_differential.py``; here the individual pieces are
tested in isolation: the batch successor API, the batch digest API,
the shared-memory visited table, and the honest
``visited_table_full`` truncation path.
"""

import pytest

from repro.core.mutex import AnonymousMutex
from repro.errors import ExplorationLimitExceeded
from repro.runtime.backends import ParallelBackend
from repro.runtime.canonical import TrivialCanonicalizer, build_canonicalizer
from repro.runtime.compiled import compile_program
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.kernel import StepInstance
from repro.runtime.system import System
from repro.runtime.visited import (
    PROBE_LIMIT,
    SharedVisitedTable,
    VisitedTableFull,
    table_capacity,
)

from tests.conftest import pids


def mutex_system(m=3):
    return System(AnonymousMutex(m=m, cs_visits=1), pids(2), record_trace=False)


def compiled_program(system):
    return compile_program(
        StepInstance.from_system(system), system.scheduler.capture_state()
    )


def bfs_states(program, limit=200):
    """A deterministic sample of reachable packed states."""
    stride = len(program.initial_packed)
    seen = {program.initial_packed}
    frontier = [program.initial_packed]
    while frontier and len(seen) < limit:
        batch = []
        for state in frontier:
            batch.extend(state)
        children, edges = program.expand_batch(batch)
        frontier = []
        for base in range(0, len(children), stride):
            child = tuple(children[base : base + stride])
            if child not in seen:
                seen.add(child)
                frontier.append(child)
        del edges
    return sorted(seen)


class TestExpandBatch:
    def test_matches_step_packed_edge_for_edge(self):
        program = compiled_program(mutex_system())
        states = bfs_states(program)
        stride = len(program.initial_packed)
        flat = []
        for state in states:
            flat.extend(state)
        children, edges = program.expand_batch(flat)
        live = program.live_tables()
        ci = 0
        expected_edges = []
        for src, state in enumerate(states):
            for _pid, s, off in program.step_order:
                if not live[s][state[off]]:
                    continue
                child = program.step_packed(state, s)
                inert = 1 if child == state else 0
                expected_edges.extend((src, s, inert))
                if not inert:
                    got = tuple(children[ci * stride : (ci + 1) * stride])
                    assert got == child, (src, s)
                    ci += 1
        assert list(edges) == expected_edges
        assert ci * stride == len(children)

    def test_batch_of_one_equals_batch_of_many(self):
        program = compiled_program(mutex_system())
        states = bfs_states(program, limit=40)
        flat = []
        for state in states:
            flat.extend(state)
        children, edges = program.expand_batch(flat)
        singly_children = []
        singly_edges = []
        for src, state in enumerate(states):
            one_children, one_edges = program.expand_batch(list(state))
            singly_children.extend(one_children)
            for base in range(0, len(one_edges), 3):
                assert one_edges[base] == 0  # src index within its batch
                singly_edges.extend((src, one_edges[base + 1],
                                     one_edges[base + 2]))
        assert list(children) == singly_children
        assert list(edges) == singly_edges


class TestBatchDigests:
    @pytest.mark.parametrize("builder", [
        lambda system: TrivialCanonicalizer(system.scheduler),
        build_canonicalizer,
    ], ids=["trivial", "symmetry"])
    def test_batch_equals_singles(self, builder):
        system = mutex_system()
        program = compiled_program(system)
        canonicalizer = builder(system)
        tables = canonicalizer.packed_digest_tables(
            program.values, program.states, program.halted, program.crashed
        )
        states = bfs_states(program, limit=60)
        m = program.m
        flat = []
        for state in states:
            flat.extend(state)
        batched = tables.batch_keys(flat, m)
        singles = [tables.batch_keys(state, m)[0] for state in states]
        assert batched == singles
        raw_batched = tables.batch_raw(flat, m)
        raw_singles = [tables.batch_raw(state, m)[0] for state in states]
        assert raw_batched == raw_singles
        # raw is injective on the sample; canonical quotients it.
        assert len(set(raw_batched)) == len(states)
        assert len({c for c, _ in batched}) <= len(states)


class TestTableCapacity:
    def test_clamps_and_doubles(self):
        assert table_capacity(1) == 1 << 12
        assert table_capacity(3_000) == 8_192  # 2x budget, power of two
        assert table_capacity(10**9) == 1 << 24
        for budget in (1, 17, 4_096, 500_000):
            capacity = table_capacity(budget)
            assert capacity & (capacity - 1) == 0


class TestSharedVisitedTable:
    def test_insert_contains_duplicate(self):
        table = SharedVisitedTable.create(4_096, "repro_vt_test_basic")
        try:
            assert table.insert(12345) is True
            assert table.insert(12345) is False
            assert 12345 in table
            assert 99999 not in table
            # The zero digest is remapped onto the sentinel's neighbour.
            assert table.insert(0) is True
            assert 0 in table and 1 in table
            assert table.insert(1) is False
        finally:
            table.close()
            table.unlink()

    def test_attach_sees_creator_writes(self):
        table = SharedVisitedTable.create(4_096, "repro_vt_test_attach")
        try:
            table.insert(777)
            other = SharedVisitedTable.attach("repro_vt_test_attach", 4_096)
            try:
                assert 777 in other
                assert other.insert(777) is False
                other.insert(888)
                assert 888 in table
            finally:
                other.close()
        finally:
            table.close()
            table.unlink()

    def test_overflow_raises_not_drops(self):
        capacity = 1_024
        table = SharedVisitedTable.create(capacity, "repro_vt_test_full")
        try:
            with pytest.raises(VisitedTableFull):
                # Distinct digests eventually exhaust a PROBE_LIMIT run.
                mask = (1 << 64) - 1
                for digest in range(1, capacity + PROBE_LIMIT + 2):
                    table.insert((digest * 0x9E3779B97F4A7C15) & mask)
        finally:
            table.close()
            table.unlink()

    def test_rejects_non_power_of_two_without_leaking(self):
        import pathlib

        with pytest.raises(ValueError):
            SharedVisitedTable.create(1_000, "repro_vt_test_bad")
        # The rejected create must not have allocated the segment.
        assert not pathlib.Path("/dev/shm/repro_vt_test_bad").exists()


class TestVisitedTableFullTruncation:
    """A too-small table truncates honestly instead of dropping states."""

    def test_truncated_by_visited_table_full(self):
        system = mutex_system(m=5)  # 14_673 states >> 1_024 slots
        result = explore(
            system,
            mutual_exclusion_invariant,
            canonicalizer=TrivialCanonicalizer(system.scheduler),
            backend=ParallelBackend(workers=2, table_capacity=1_024),
            max_states=500_000,
            max_depth=1_000_000,
        )
        assert result.truncated_by == "visited_table_full"
        assert not result.complete
        assert result.ok  # no violation was found in the explored part
        assert 0 < result.states_explored < 14_673

    def test_raise_on_truncation_fires(self):
        system = mutex_system(m=5)
        with pytest.raises(ExplorationLimitExceeded):
            explore(
                system,
                mutual_exclusion_invariant,
                canonicalizer=TrivialCanonicalizer(system.scheduler),
                backend=ParallelBackend(workers=2, table_capacity=1_024),
                max_states=500_000,
                max_depth=1_000_000,
                raise_on_truncation=True,
            )
