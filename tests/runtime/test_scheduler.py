"""Unit tests for the scheduler: stepping, crashes, capture/restore."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.errors import SchedulingError
from repro.runtime.adversary import RandomAdversary, RoundRobinAdversary, SoloAdversary
from repro.runtime.ops import ReadOp
from repro.runtime.system import System

from tests.conftest import pids


def mutex_system(m=3, n=2, cs_visits=1, **kwargs):
    return System(AnonymousMutex(m=m, cs_visits=cs_visits), pids(n), **kwargs)


def consensus_system(n=2, **kwargs):
    inputs = {pid: f"v{k}" for k, pid in enumerate(pids(n))}
    return System(AnonymousConsensus(n=n), inputs, **kwargs)


class TestStepping:
    def test_first_step_of_fig1_is_a_read(self):
        system = mutex_system()
        event = system.scheduler.step(pids(1)[0])
        assert isinstance(event.op, ReadOp)
        assert event.result == 0
        assert event.physical_index == 0

    def test_events_are_sequentially_numbered(self):
        system = mutex_system()
        p1, p2 = pids(2)
        events = [system.scheduler.step(p) for p in (p1, p2, p1)]
        assert [e.seq for e in events] == [0, 1, 2]

    def test_stepping_unknown_pid_raises(self):
        system = mutex_system()
        with pytest.raises(SchedulingError):
            system.scheduler.step(999)

    def test_stepping_halted_process_raises(self):
        system = consensus_system(n=1)
        (pid,) = pids(1)
        system.scheduler.run_solo_until_halt(pid)
        with pytest.raises(SchedulingError):
            system.scheduler.step(pid)

    def test_pending_op_matches_next_step(self):
        system = mutex_system()
        pid = pids(1)[0]
        pending = system.scheduler.pending_op(pid)
        event = system.scheduler.step(pid)
        assert event.op == pending

    def test_steps_are_counted_per_process(self):
        system = mutex_system()
        p1, p2 = pids(2)
        for _ in range(3):
            system.scheduler.step(p1)
        system.scheduler.step(p2)
        assert system.scheduler.runtime(p1).steps == 3
        assert system.scheduler.runtime(p2).steps == 1


class TestCrash:
    def test_crashed_process_is_disabled(self):
        system = consensus_system(n=2)
        p1, p2 = pids(2)
        system.scheduler.crash(p1)
        assert p1 not in system.scheduler.enabled_pids()
        assert p2 in system.scheduler.enabled_pids()

    def test_stepping_crashed_process_raises(self):
        system = consensus_system(n=2)
        p1, _ = pids(2)
        system.scheduler.crash(p1)
        with pytest.raises(SchedulingError):
            system.scheduler.step(p1)

    def test_crash_is_recorded_in_trace(self):
        system = consensus_system(n=2)
        p1, p2 = pids(2)
        system.scheduler.step(p2)
        system.scheduler.crash(p1)
        assert p1 in system.scheduler.trace.crash_seq

    def test_crashing_halted_process_raises(self):
        system = consensus_system(n=1)
        (pid,) = pids(1)
        system.scheduler.run_solo_until_halt(pid)
        with pytest.raises(SchedulingError):
            system.scheduler.crash(pid)

    def test_consensus_tolerates_crash_of_other_under_obstruction(self):
        # Obstruction-freedom: the survivor running alone still decides.
        system = consensus_system(n=2)
        p1, p2 = pids(2)
        system.scheduler.step(p1)  # a little contention first
        system.scheduler.crash(p1)
        system.scheduler.run_solo_until_halt(p2)
        assert system.scheduler.output_of(p2) is not None


class TestRunLoop:
    def test_run_until_all_halted(self):
        system = consensus_system(n=2)
        trace = system.run(RandomAdversary(0), max_steps=50_000)
        assert trace.stop_reason == "all-halted"
        assert trace.all_halted()

    def test_run_respects_max_steps(self):
        system = consensus_system(n=3)
        trace = system.run(RoundRobinAdversary(), max_steps=50)
        assert len(trace) == 50
        assert trace.stop_reason == "max-steps"

    def test_adversary_stop_recorded(self):
        system = consensus_system(n=2)
        trace = system.run(SoloAdversary(pids(1)[0]), max_steps=50_000)
        assert trace.stop_reason == "adversary-stop"

    def test_final_values_captured(self):
        system = consensus_system(n=1)
        trace = system.run(RoundRobinAdversary(), max_steps=10_000)
        assert len(trace.final_values) == system.memory.size

    def test_outputs_collected(self):
        system = consensus_system(n=2)
        system.run(RandomAdversary(1), max_steps=50_000)
        outputs = system.outputs()
        assert set(outputs) == set(pids(2))


class TestCaptureRestore:
    def test_restore_rewinds_memory_and_local_state(self):
        system = consensus_system(n=2)
        scheduler = system.scheduler
        p1, _ = pids(2)
        checkpoint = scheduler.capture_state()
        for _ in range(10):
            scheduler.step(p1)
        assert system.memory.snapshot() != checkpoint[0]
        scheduler.restore_state(checkpoint)
        assert system.memory.snapshot() == checkpoint[0]
        assert scheduler.runtime(p1).state == system.automata[p1].initial_state()

    def test_restored_run_is_deterministic(self):
        system = consensus_system(n=2)
        scheduler = system.scheduler
        p1, p2 = pids(2)
        checkpoint = scheduler.capture_state()
        first = [scheduler.step(p).op for p in (p1, p2, p1, p1)]
        scheduler.restore_state(checkpoint)
        second = [scheduler.step(p).op for p in (p1, p2, p1, p1)]
        assert first == second

    def test_capture_includes_halted_flags(self):
        system = consensus_system(n=1)
        (pid,) = pids(1)
        scheduler = system.scheduler
        checkpoint = scheduler.capture_state()
        scheduler.run_solo_until_halt(pid)
        halted_checkpoint = scheduler.capture_state()
        scheduler.restore_state(checkpoint)
        assert pid in scheduler.enabled_pids()
        scheduler.restore_state(halted_checkpoint)
        assert pid not in scheduler.enabled_pids()


class TestCoveredRegister:
    def test_initially_covering_nothing(self):
        system = mutex_system()
        assert system.scheduler.covered_register(pids(1)[0]) is None

    def test_fig1_covers_after_reading_zero(self):
        # After reading a 0 register, Fig 1 pends a write to it: covered.
        system = mutex_system()
        pid = pids(1)[0]
        system.scheduler.step(pid)
        assert system.scheduler.covered_register(pid) == 0

    def test_run_solo_until_halt_returns_step_count(self):
        system = consensus_system(n=1)
        (pid,) = pids(1)
        steps = system.scheduler.run_solo_until_halt(pid)
        assert steps == system.scheduler.runtime(pid).steps
        assert steps > 0
