"""Unit tests for the automaton base class and covering introspection."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutexProcess
from repro.errors import ProtocolError
from repro.memory.anonymous import AnonymousMemory
from repro.runtime.automaton import pending_write_target
from repro.runtime.system import System

from tests.conftest import pids


class TestRequireRunning:
    def test_stepping_after_halt_is_a_protocol_error(self):
        system = System(AnonymousConsensus(n=1), {101: "v"})
        automaton = system.automata[101]
        system.scheduler.run_solo_until_halt(101)
        state = system.scheduler.runtime(101).state
        with pytest.raises(ProtocolError):
            automaton.next_op(state)


class TestRunSolo:
    def test_run_solo_halts_and_returns_steps(self):
        memory = AnonymousMemory(5, (101,))
        system = System(AnonymousConsensus(n=3), {101: "v", 103: "w", 107: "x"})
        automaton = system.automata[101]
        state, steps = automaton.run_solo(system.memory.view(101))
        assert automaton.is_halted(state)
        assert automaton.output(state) == "v"
        assert steps > 0

    def test_run_solo_raises_on_budget_exhaustion(self):
        system = System(AnonymousConsensus(n=2), {101: "v", 103: "w"})
        automaton = system.automata[101]
        with pytest.raises(ProtocolError):
            automaton.run_solo(system.memory.view(101), max_steps=2)


class TestPendingWriteTarget:
    def test_none_before_any_step(self):
        memory = AnonymousMemory(3, (101,))
        automaton = AnonymousMutexProcess(101, m=3)
        state = automaton.initial_state()
        assert pending_write_target(automaton, state, memory.view(101)) is None

    def test_target_reported_in_physical_coordinates(self):
        from repro.memory.naming import ExplicitNaming

        naming = ExplicitNaming({101: (2, 0, 1)})
        memory = AnonymousMemory(3, (101,), naming=naming)
        automaton = AnonymousMutexProcess(101, m=3)
        state = automaton.initial_state()
        # One read of p[0] (=physical 2) returning 0 puts a write there.
        view = memory.view(101)
        op = automaton.next_op(state)
        state = automaton.apply(state, op, view.read(op.index))
        assert pending_write_target(automaton, state, view) == 2

    def test_halted_process_covers_nothing(self):
        system = System(AnonymousConsensus(n=1), {101: "v"})
        system.scheduler.run_solo_until_halt(101)
        automaton = system.automata[101]
        state = system.scheduler.runtime(101).state
        assert (
            pending_write_target(automaton, state, system.memory.view(101)) is None
        )


class TestAlgorithmDefaults:
    def test_initial_value_defaults_to_zero(self):
        from repro.core.mutex import AnonymousMutex

        assert AnonymousMutex(m=3).initial_value() == 0

    def test_anonymous_by_default(self):
        from repro.core.mutex import AnonymousMutex

        assert AnonymousMutex(m=3).is_anonymous()
