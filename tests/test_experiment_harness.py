"""Smoke tests for the standalone experiment harness
(``benchmarks/run_experiments.py``): every experiment function must run
and assert its claims.  The heavyweight ones are exercised at reduced
scale by the benchmark suite; here we run the fast ones end to end and
check the registry wiring.
"""

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "run_experiments.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("run_experiments", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestHarness:
    def test_registry_covers_e1_through_e14(self, harness):
        names = [name for name, _ in harness.EXPERIMENTS]
        joined = " ".join(names)
        for k in range(1, 15):
            assert f"E{k}" in joined, f"E{k} missing from the registry"

    def test_e5_election_runs(self, harness, capsys):
        harness.e5_election()
        out = capsys.readouterr().out
        assert "E5" in out and "unanimous winner" in out

    def test_e13_plasticity_runs(self, harness, capsys):
        harness.e13_plasticity()
        out = capsys.readouterr().out
        assert "plasticity" in out

    def test_e9_impossibility_runs(self, harness, capsys):
        harness.e9_e10_e11_impossibility()
        out = capsys.readouterr().out
        assert "rho-violation" in out and "z-no-progress" in out

    def test_main_with_selection(self, harness, capsys):
        harness.main(["E5"])
        out = capsys.readouterr().out
        assert "E5" in out and "reproduced" in out
