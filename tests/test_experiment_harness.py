"""Smoke tests for the standalone experiment harness
(``benchmarks/run_experiments.py``): every experiment function must run
and assert its claims.  The heavyweight ones are exercised at reduced
scale by the benchmark suite; here we run the fast ones end to end and
check the registry wiring.
"""

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "run_experiments.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("run_experiments", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestHarness:
    def test_registry_covers_e1_through_e14(self, harness):
        names = [name for name, _ in harness.EXPERIMENTS]
        joined = " ".join(names)
        for k in range(1, 15):
            assert f"E{k}" in joined, f"E{k} missing from the registry"

    def test_e5_election_runs(self, harness, capsys):
        harness.e5_election()
        out = capsys.readouterr().out
        assert "E5" in out and "unanimous winner" in out

    def test_e13_plasticity_runs(self, harness, capsys):
        harness.e13_plasticity()
        out = capsys.readouterr().out
        assert "plasticity" in out

    def test_e9_impossibility_runs(self, harness, capsys):
        harness.e9_e10_e11_impossibility()
        out = capsys.readouterr().out
        assert "rho-violation" in out and "z-no-progress" in out

    def test_main_with_selection(self, harness, capsys):
        harness.main(["E5"])
        out = capsys.readouterr().out
        assert "E5" in out and "reproduced" in out


class TestExplorationBench:
    def test_full_instance_list_covers_the_recorded_trajectory(self, harness):
        full = [label for label, *_ in harness._bench_instances(quick=False)]
        quick = [label for label, *_ in harness._bench_instances(quick=True)]
        assert len(full) >= 6
        assert set(quick) <= set(full)
        assert any("m=7" in label for label in full)
        assert any("consensus n=3" in label for label in full)

    def test_check_baseline_flags_regressions(self, harness, tmp_path):
        def doc(states, verdict="exhaustive-ok"):
            return {
                "instances": [
                    {
                        "instance": "mutex m=3 (n=2)",
                        "seed": {"verdict": "exhaustive-ok", "states": 1747},
                        "canonical": {"verdict": verdict, "states": states},
                    }
                ]
            }

        baseline = tmp_path / "baseline.json"
        import json

        baseline.write_text(json.dumps(doc(771)))
        assert harness.check_baseline(doc(771), baseline) == []
        assert harness.check_baseline(doc(770), baseline) == []
        problems = harness.check_baseline(doc(900), baseline)
        assert problems and "regressed" in problems[0]
        problems = harness.check_baseline(doc(771, verdict="bounded-ok"), baseline)
        assert problems and "verdict changed" in problems[0]

    def test_quick_bench_writes_schema_v8(self, harness, tmp_path, capsys):
        out = tmp_path / "bench.json"
        import json

        code = harness.main([
            "--bench", "--quick", "--bench-out", str(out),
            "--kernel", "compiled",
        ])
        capsys.readouterr()
        assert code == 0
        document = json.loads(out.read_text())
        assert document["schema"] == "repro.bench_explore/v8"
        # v8: degraded_host is stamped at the top level so speedup
        # gates can decide skip-vs-fail without reading every record.
        assert document["degraded_host"] == (document["host_cpus"] == 1)
        # v6: the sweep-farm micro-benchmark block
        sweep_block = document["sweep"]
        assert sweep_block["grid_cells"] > 0
        assert sweep_block["cells_per_second"] is None or (
            sweep_block["cells_per_second"] > 0
        )
        assert sweep_block["resume_overhead_seconds"] >= 0.0
        assert sweep_block["retained_edge_bytes"] > 0
        # v7: the seeded-fuzzer micro-benchmark block — the mutant row
        # must carry certified violations, the clean row none.
        fuzz_block = document["fuzz"]
        assert fuzz_block["seed"] == document["rng_seed"]
        assert fuzz_block["families"] == [
            "lockstep", "random", "greedy", "covering",
        ]
        mutant = fuzz_block["instances"]["figure-1-mutex-even-m(m=4)"]
        clean = fuzz_block["instances"]["figure-1-mutex(m=3)"]
        assert mutant["violations"] > 0
        assert sum(mutant["violations_by_family"].values()) == (
            mutant["violations"]
        )
        assert clean["violations"] == 0
        for row in (mutant, clean):
            assert row["episodes"] == fuzz_block["episodes"]
            assert row["steps"] > 0
            assert row["distinct_states"] > 0
        assert document["rng_seed"] == 5
        assert document["backend"] == "serial"
        assert document["kernel"] == "compiled"
        assert document["workers"] == 1
        assert document["host_cpus"] >= 1
        assert document["telemetry"] == {
            "enabled": False, "dir": None, "manifests": [],
        }
        for record in document["instances"]:
            assert record["seed"]["verdict"] == record["canonical"]["verdict"]
            assert (
                record["canonical"]["states"] <= record["seed"]["states"]
            )
            # v5: the compiled block repeats both walks on the
            # table-compiled kernel; state counts are asserted equal by
            # the harness before anything is recorded.
            block = record["compiled"]
            assert block["kernel"] == "compiled"
            assert block["states"] == record["seed"]["states"]
            assert block["verdict"] == record["seed"]["verdict"]
            speedup = block["speedup_vs_interpreted"]
            assert speedup is None or speedup > 0
            nested = block["canonical"]
            assert nested["states"] == record["canonical"]["states"]
            assert nested["kernel"] == "compiled"
        # v4 adds a graph-retention/verification block to every instance
        # whose registry entry declares liveness properties.
        verified = [r for r in document["instances"] if "verify" in r]
        assert verified, "no quick instance carries the v4 verify block"
        for record in verified:
            block = record["verify"]
            assert block["ok"] is True
            assert block["retained_edges"] > 0
            assert block["verify_wall_seconds"] >= 0.0
            assert block["explore_wall_seconds"] > 0.0
            assert block["properties"]

    def test_telemetry_flag_writes_schema_valid_manifests(
        self, harness, tmp_path, capsys
    ):
        from repro.obs import load_manifests

        out = tmp_path / "bench.json"
        telemetry_dir = tmp_path / "telemetry"
        import json

        code = harness.main([
            "--bench", "--quick", "--bench-out", str(out),
            "--telemetry", str(telemetry_dir),
        ])
        capsys.readouterr()
        assert code == 0
        document = json.loads(out.read_text())
        block = document["telemetry"]
        assert block["enabled"] and block["dir"] == str(telemetry_dir)
        # One seed + one canonical manifest per quick instance.
        assert len(block["manifests"]) == 2 * len(document["instances"])
        manifests = load_manifests(telemetry_dir)
        assert len(manifests) == len(block["manifests"])
        assert {m.kind for m in manifests} == {"exploration"}
        for record in document["instances"]:
            for engine in ("seed", "canonical"):
                matches = [
                    m for m in manifests
                    if m.algorithm == record["instance"]
                    and m.parameters["engine"] == engine
                ]
                assert len(matches) == 1
                assert matches[0].verdict() == record[engine]["verdict"]
                assert matches[0].outcome["states"] == record[engine]["states"]
                assert (
                    matches[0].telemetry["gauges"]["explore.states"]
                    == record[engine]["states"]
                )
