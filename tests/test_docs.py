"""Documentation honesty tests: the snippets in README.md and the
package docstring must actually run and produce what they claim."""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[1] / "README.md"


class TestReadmeQuickstart:
    def test_quickstart_snippet_executes_verbatim(self):
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert blocks, "README lost its quickstart code block"
        snippet = blocks[0]
        # The snippet ends in a print(); capture and check the claim in
        # the adjacent comment (all three decide 'apple').
        namespace: dict = {}
        exec(compile(snippet, "<README quickstart>", "exec"), namespace)
        trace = namespace["trace"]
        assert set(trace.outputs.values()) == {"apple"}

    def test_mentioned_files_exist(self):
        text = README.read_text()
        root = README.parent
        for rel in ("DESIGN.md", "EXPERIMENTS.md", "docs/MODEL.md",
                    "docs/ALGORITHMS.md", "quickstart.py",
                    "benchmarks/run_experiments.py"):
            assert rel in text, f"README no longer mentions {rel}"
        for rel in ("DESIGN.md", "EXPERIMENTS.md", "docs/MODEL.md",
                    "docs/ALGORITHMS.md", "examples/quickstart.py",
                    "benchmarks/run_experiments.py"):
            assert (root / rel).exists(), f"{rel} mentioned but missing"

    def test_example_table_matches_directory(self):
        text = README.read_text()
        examples_dir = README.parent / "examples"
        for script in examples_dir.glob("*.py"):
            assert script.name in text, (
                f"example {script.name} exists but README does not list it"
            )


class TestPackageDocstring:
    def test_module_docstring_example_runs(self):
        import repro

        doc = repro.__doc__
        # Extract the doctest-style lines and run them as a script.
        lines = [
            line[4:]
            for line in doc.splitlines()
            if line.startswith(">>> ") or line.startswith("... ")
        ]
        assert lines, "package docstring lost its example"
        namespace: dict = {}
        exec(compile("\n".join(lines), "<repro docstring>", "exec"), namespace)
        trace = namespace["trace"]
        assert len(set(trace.outputs.values())) == 1


class TestCliDocstring:
    def test_every_subcommand_appears_in_main_docstring(self):
        # `python -m repro --help` shows this docstring; a subcommand
        # missing from it is invisible to users.
        import repro.__main__ as cli

        doc = cli.__doc__
        for name in cli.COMMANDS:
            assert f"* ``{name}``" in doc, (
                f"subcommand {name!r} registered but undocumented in "
                "the repro.__main__ docstring"
            )
