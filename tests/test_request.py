"""RunRequest: validation, registry resolution, deprecation shims.

The deprecation-message tests pin the exact warning text — the removal
PR (PR 11) greps for these strings, so they must not drift.
"""

import warnings

import pytest

from repro.analysis.experiments import sweep_problem
from repro.errors import ConfigurationError
from repro.problems import get_problem
from repro.request import (
    RunRequest,
    deprecated_keywords_message,
    resolve_target,
)
from repro.verify.runner import verify_instance


# -- construction-time validation --------------------------------------

class TestRunRequestValidation:
    def test_defaults_pin_nothing(self):
        request = RunRequest()
        assert request.kernel is None
        assert request.backend is None
        assert request.params_dict() is None

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError) as err:
            RunRequest(kernel="jit")
        assert str(err.value) == (
            "unknown kernel 'jit'; expected 'interpreted' or 'compiled'"
        )

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError) as err:
            RunRequest(backend="cluster")
        assert str(err.value) == (
            "unknown backend 'cluster'; "
            "expected 'serial', 'parallel' or 'process'"
        )

    def test_compiled_kernel_rejects_parallel_backend(self):
        with pytest.raises(ConfigurationError) as err:
            RunRequest(kernel="compiled", backend="parallel")
        assert str(err.value) == (
            "kernel='compiled' is a drop-in replacement for the serial "
            "backend; got backend 'parallel'"
        )

    def test_compiled_kernel_accepts_serial_backend(self):
        request = RunRequest(kernel="compiled", backend="serial")
        assert request.kernel == "compiled"

    @pytest.mark.parametrize("field", ["workers", "max_steps", "max_states"])
    def test_positive_int_budgets(self, field):
        with pytest.raises(ConfigurationError):
            RunRequest(**{field: 0})
        with pytest.raises(ConfigurationError):
            RunRequest(**{field: "many"})

    def test_seed_must_be_int(self):
        with pytest.raises(ConfigurationError):
            RunRequest(seed="7")

    def test_params_mapping_normalised_hashable(self):
        request = RunRequest(params={"n": 3, "m": 5})
        assert request.params == (("m", 5), ("n", 3))
        assert hash(request) == hash(RunRequest(params={"m": 5, "n": 3}))
        assert request.params_dict() == {"m": 5, "n": 3}

    def test_replace_revalidates(self):
        request = RunRequest(kernel="compiled")
        with pytest.raises(ConfigurationError):
            request.replace(backend="parallel")


# -- keyword merging ---------------------------------------------------

class TestMerged:
    def test_request_field_wins_over_default(self):
        request = RunRequest(max_states=100)
        assert request.merged("max_states", None) == 100

    def test_explicit_keyword_passes_through_when_unset(self):
        assert RunRequest().merged("max_states", 42) == 42

    def test_matching_explicit_is_fine(self):
        assert RunRequest(workers=4).merged("workers", 4) == 4

    def test_conflicting_explicit_raises(self):
        with pytest.raises(ConfigurationError) as err:
            RunRequest(workers=4).merged("workers", 2)
        assert str(err.value) == (
            "request= already carries workers=4; drop the conflicting "
            "workers=2 keyword"
        )

    def test_entry_point_default_never_conflicts(self):
        # 500_000 is explore()'s own default — not a user choice.
        request = RunRequest(max_states=100)
        assert request.merged("max_states", 500_000, default=500_000) == 100


# -- registry resolution -----------------------------------------------

class TestResolveTarget:
    def test_requires_problem(self):
        with pytest.raises(ConfigurationError) as err:
            resolve_target(None)
        assert "a problem key is required" in str(err.value)

    def test_instance_label(self):
        spec, inst = resolve_target("figure-1-mutex", "figure-1-mutex(m=3)")
        assert spec.key == "figure-1-mutex"
        assert inst.label == "figure-1-mutex(m=3)"

    def test_instance_as_mutant_problem_key(self):
        spec, inst = resolve_target("figure-1-mutex", "figure-1-mutex-even-m")
        assert spec.key == "figure-1-mutex-even-m"
        assert inst.label == "figure-1-mutex-even-m(m=4)"

    def test_unknown_instance_names_known_labels(self):
        with pytest.raises(ConfigurationError) as err:
            resolve_target("figure-1-mutex", "nope")
        assert "figure-1-mutex(m=3)" in str(err.value)

    def test_params_synthesise_adhoc_instance(self):
        spec, inst = resolve_target("figure-1-mutex", params={"m": 7})
        assert inst.label == "figure-1-mutex(m=7)"
        assert inst.params_dict() == {"m": 7}

    def test_default_first_instance(self):
        spec, inst = resolve_target("figure-1-mutex")
        assert inst.label == spec.instances[0].label


# -- deprecation shims -------------------------------------------------

class TestDeprecationShims:
    def test_message_template(self):
        assert deprecated_keywords_message("f", ["a", "b"]) == (
            "f(a=/b=...) is deprecated; pass a RunRequest via request= "
            "(the keyword form will be removed in PR 11)"
        )

    def test_verify_instance_keyword_warns_with_pinned_message(self):
        spec = get_problem("figure-1-mutex")
        inst = spec.instance("figure-1-mutex(m=3)")
        with pytest.warns(DeprecationWarning) as caught:
            verify_instance(spec, inst, max_states=50_000)
        assert str(caught[0].message) == (
            "verify_instance(max_states=...) is deprecated; pass a "
            "RunRequest via request= "
            "(the keyword form will be removed in PR 11)"
        )

    def test_verify_instance_request_path_does_not_warn(self):
        spec = get_problem("figure-1-mutex")
        inst = spec.instance("figure-1-mutex(m=3)")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = verify_instance(
                spec, inst, request=RunRequest(max_states=50_000)
            )
        assert report.ok

    def test_verify_instance_resolves_from_request_alone(self):
        report = verify_instance(
            request=RunRequest(
                problem="figure-1-mutex", instance="figure-1-mutex(m=3)"
            )
        )
        assert report.ok

    def test_verify_instance_without_target_raises(self):
        with pytest.raises(ConfigurationError):
            verify_instance(request=RunRequest(max_states=10))

    def test_sweep_problem_keyword_warns_with_pinned_message(self):
        from repro.memory.naming import IdentityNaming
        from repro.runtime.adversary import RandomAdversary

        with pytest.warns(DeprecationWarning) as caught:
            result = sweep_problem(
                "figure-1-mutex",
                namings=[IdentityNaming()],
                adversaries=[RandomAdversary(1)],
                checkers_factory=lambda: [],
                max_steps=500,
            )
        assert str(caught[0].message) == (
            "sweep_problem(max_steps=...) is deprecated; pass a "
            "RunRequest via request= "
            "(the keyword form will be removed in PR 11)"
        )
        assert result.runs == 1

    def test_sweep_problem_request_path_does_not_warn(self):
        from repro.memory.naming import IdentityNaming
        from repro.runtime.adversary import RandomAdversary

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = sweep_problem(
                "figure-1-mutex",
                namings=[IdentityNaming()],
                adversaries=[RandomAdversary(1)],
                checkers_factory=lambda: [],
                request=RunRequest(max_steps=500),
            )
        assert result.runs == 1
