"""Engine acceptance tests: the mutant is found, clean instances stay
clean, every reported witness replays on a live system, and the run is
a pure function of its seed."""

import pytest

from repro.errors import ConfigurationError, FuzzError
from repro.fuzz.engine import run_fuzz
from repro.request import RunRequest
from repro.runtime.replay import replay_schedule

EPISODES = 16  # the shared budget: enough for every family to fire 4x


def fuzz(instance, seed=7, episodes=EPISODES, **kwargs):
    return run_fuzz(
        RunRequest(problem="figure-1-mutex", instance=instance, seed=seed),
        episodes=episodes,
        **kwargs,
    )


@pytest.fixture(scope="module")
def mutant_report():
    return fuzz("figure-1-mutex-even-m")


class TestAcceptance:
    def test_mutant_deterministically_found(self, mutant_report):
        assert mutant_report.found
        assert mutant_report.instance == "figure-1-mutex-even-m(m=4)"
        kinds = {v.kind for v in mutant_report.violations}
        assert kinds == {"deadlock-freedom"}
        # the Theorem 3.4 lockstep template fires in episode 0
        first = mutant_report.violations[0]
        assert first.episode == 0 and first.family == "lockstep"
        assert "Theorem 3.4" in first.message

    def test_clean_instances_stay_clean_under_the_same_budget(self):
        # Sound oracles: a correct instance can never produce a hit, so
        # these assert soundness, not luck.
        for label in ("figure-1-mutex(m=3)", "figure-1-mutex(m=5)"):
            report = fuzz(label)
            assert not report.found, label
            assert report.episodes_run == EPISODES

    def test_seed_determinism(self, mutant_report):
        again = fuzz("figure-1-mutex-even-m")
        assert again.to_dict() == mutant_report.to_dict()

    def test_different_seed_different_schedules(self, mutant_report):
        other = fuzz("figure-1-mutex-even-m", seed=8)
        assert other.found  # the mutant falls to any seed...
        assert [v.schedule for v in other.violations] != [
            v.schedule for v in mutant_report.violations
        ]  # ...but via seed-specific schedules


class TestWitnessReplay:
    def test_every_shrunk_lasso_replays_via_replay_schedule(
        self, mutant_report
    ):
        # Independent of the engine's own certification: rebuild the
        # live system and drive the published witness through the
        # replay API a reader of the report would use.
        from repro.problems import get_problem

        spec = get_problem("figure-1-mutex-even-m")
        instance = spec.instance("figure-1-mutex-even-m(m=4)")
        for violation in mutant_report.violations:
            prefix = list(violation.shrunk_prefix)
            cycle = list(violation.shrunk_cycle)
            entry_system = spec.system(instance, record_trace=True)
            replay_schedule(entry_system, prefix)
            entry = entry_system.scheduler.capture_state()

            closed_system = spec.system(instance, record_trace=True)
            trace = replay_schedule(closed_system, prefix + cycle)
            assert len(trace.events) == len(prefix) + len(cycle)
            assert closed_system.scheduler.capture_state() == entry

    def test_shrunk_never_longer_than_raw(self, mutant_report):
        for violation in mutant_report.violations:
            assert len(violation.shrunk_cycle) <= len(violation.cycle)
            assert len(violation.shrunk_prefix) <= len(violation.prefix)


class TestBudgets:
    def test_max_violations_stops_the_run(self):
        report = fuzz("figure-1-mutex-even-m", max_violations=1)
        assert len(report.violations) == 1
        assert report.episodes_run < EPISODES

    def test_max_states_truncates_with_reason(self):
        report = run_fuzz(
            RunRequest(
                problem="figure-1-mutex",
                instance="figure-1-mutex(m=3)",
                seed=7,
                max_states=40,
            ),
            episodes=EPISODES,
        )
        assert report.truncated_by == "max_states"
        assert report.episodes_run < EPISODES

    def test_zero_episodes_is_a_clean_noop(self):
        report = fuzz("figure-1-mutex(m=3)", episodes=0)
        assert report.episodes_run == 0 and report.steps == 0
        assert not report.found

    def test_negative_episodes_rejected(self):
        with pytest.raises(FuzzError, match="episodes must be >= 0"):
            fuzz("figure-1-mutex(m=3)", episodes=-1)


class TestConfiguration:
    def test_parallel_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="serial per episode"):
            run_fuzz(
                RunRequest(
                    problem="figure-1-mutex",
                    instance="figure-1-mutex(m=3)",
                    backend="parallel",
                )
            )

    def test_unknown_family_rejected_before_any_episode(self):
        with pytest.raises(FuzzError, match="unknown strategy family"):
            fuzz("figure-1-mutex(m=3)", families=["random", "zigzag"])

    def test_family_subset_restricts_the_rotation(self):
        report = fuzz("figure-1-mutex-even-m", families=["random"], episodes=4)
        assert report.families == ("random",)
        assert all(v.family == "random" for v in report.violations)

    def test_by_family_includes_zero_rows(self):
        report = fuzz("figure-1-mutex(m=3)", episodes=4)
        assert report.by_family() == {
            "lockstep": 0, "random": 0, "greedy": 0, "covering": 0,
        }


class TestEpisodeSharding:
    def test_episode_base_reproduces_the_one_shot_suffix(self, mutant_report):
        # A farm cell covering episodes [8, 16) must reproduce exactly
        # the violations the one-shot run attributed to those episodes.
        shard = fuzz("figure-1-mutex-even-m", episodes=8, episode_base=8)
        expected = [
            v.to_dict()
            for v in mutant_report.violations
            if 8 <= v.episode < 16
        ]
        assert [v.to_dict() for v in shard.violations] == expected
