"""Strategy family unit tests: determinism, enabled-set discipline,
surrender semantics, and the per-episode seed derivation."""

import random

import pytest

from repro.errors import FuzzError
from repro.fuzz.engine import episode_seed
from repro.fuzz.strategies import (
    STRATEGY_FAMILIES,
    CoveringStrategy,
    FuzzContext,
    LockstepStrategy,
    PureRandomStrategy,
    TelemetryGreedyStrategy,
    build_strategy,
)


def ctx(enabled, step_index=0, pending=None, contention=None, halted=0):
    return FuzzContext(
        enabled=tuple(enabled),
        step_index=step_index,
        pending=pending or {pid: None for pid in enabled},
        contention=contention or {},
        halted=halted,
    )


class TestBuildStrategy:
    def test_families_are_registered_in_rotation_order(self):
        assert STRATEGY_FAMILIES == ("lockstep", "random", "greedy", "covering")
        for family in STRATEGY_FAMILIES:
            strategy = build_strategy(family, random.Random(0))
            assert strategy.name == family

    def test_unknown_family_raises_fuzz_error(self):
        with pytest.raises(FuzzError, match="unknown strategy family 'zigzag'"):
            build_strategy("zigzag", random.Random(0))

    def test_fresh_instance_per_call(self):
        a = build_strategy("lockstep", random.Random(0))
        b = build_strategy("lockstep", random.Random(0))
        assert a is not b


class TestDeterminism:
    @pytest.mark.parametrize("family", STRATEGY_FAMILIES)
    def test_same_rng_same_contexts_same_choices(self, family):
        def run():
            strategy = build_strategy(family, random.Random(42))
            return [
                strategy.choose(ctx([101, 103, 107], step_index=i))
                for i in range(40)
            ]

        assert run() == run()


class TestPureRandom:
    def test_choices_stay_within_enabled(self):
        strategy = PureRandomStrategy(random.Random(1))
        for _ in range(50):
            assert strategy.choose(ctx([101, 103])) in (101, 103)


class TestLockstep:
    def test_strict_rotation_over_the_initial_enabled_set(self):
        strategy = LockstepStrategy(random.Random(0))
        picks = [strategy.choose(ctx([101, 103])) for _ in range(6)]
        assert picks == [101, 103, 101, 103, 101, 103]

    def test_surrenders_when_a_ring_member_disappears(self):
        strategy = LockstepStrategy(random.Random(0))
        assert strategy.choose(ctx([101, 103])) == 101
        # 103 is due next but no longer enabled: lockstep is broken
        assert strategy.choose(ctx([101], halted=1)) is None


class TestCovering:
    def test_always_picks_an_enabled_pid(self):
        strategy = CoveringStrategy(random.Random(3), burst=4)
        for i in range(60):
            pick = strategy.choose(ctx([101, 103, 107], step_index=i))
            assert pick in (101, 103, 107)

    def test_blocked_subset_is_respected_within_a_burst(self):
        strategy = CoveringStrategy(random.Random(0), burst=8)
        picks = {strategy.choose(ctx([101, 103, 107])) for _ in range(8)}
        # whatever subset got suspended, the burst never schedules it
        assert picks == set(picks) - strategy._blocked


class TestTelemetryGreedy:
    def test_contended_pid_is_favoured(self):
        strategy = TelemetryGreedyStrategy(random.Random(0))
        contention = {101: 50}
        picks = [
            strategy.choose(ctx([101, 103], contention=contention))
            for _ in range(200)
        ]
        assert picks.count(101) > picks.count(103) * 5

    def test_imminent_collision_adds_weight(self):
        strategy = TelemetryGreedyStrategy(random.Random(0))
        # both pending ops target register 2: each gains collision weight
        pending = {101: 2, 103: 2, 107: None}
        picks = [
            strategy.choose(ctx([101, 103, 107], pending=pending))
            for _ in range(300)
        ]
        assert picks.count(107) < picks.count(101) + picks.count(103)


class TestEpisodeSeed:
    def test_deterministic_and_axis_sensitive(self):
        base = episode_seed(7, 0, "lockstep")
        assert base == episode_seed(7, 0, "lockstep")
        assert base != episode_seed(8, 0, "lockstep")
        assert base != episode_seed(7, 1, "lockstep")
        assert base != episode_seed(7, 0, "random")

    def test_pinned_value(self):
        # The derivation is part of the reproducibility contract: a
        # changed constant silently invalidates every recorded witness.
        import hashlib

        digest = hashlib.blake2b(b"7:0:lockstep", digest_size=8).digest()
        assert episode_seed(7, 0, "lockstep") == int.from_bytes(digest, "big")
