"""Fuzz cells on the disk farm: sharding, aggregation, resume identity.

The properties pinned here mirror the sweep farm's (PR 8) for the new
``fuzz`` cell kind: episode ranges shard deterministically, a sharded
farm reproduces the one-shot engine's violations byte-for-byte (episode
RNGs derive from the *global* episode index, so cell boundaries are
invisible), and a farm killed mid-cell resumes to results identical to
an uninterrupted run.
"""

import json

import pytest

from repro.__main__ import main
from repro.farm import (
    create_farm,
    drain_farm,
    farm_result,
    grid_cells,
    resume_farm,
    run_farm,
)
from repro.fuzz.cli import aggregate_fuzz_rows
from repro.fuzz.engine import run_fuzz
from repro.obs.manifest import load_manifests
from repro.request import RunRequest

EPISODES = 16
PER_CELL = 4


def fuzz_config(episodes=EPISODES, per_cell=PER_CELL, max_attempts=1):
    return {
        "problem": "figure-1-mutex",
        "instance": "figure-1-mutex-even-m",
        "params": None,
        "fuzz": {
            "seed": 7,
            "episodes": episodes,
            "max_steps": 64,
            "kernel": "interpreted",
            "max_states": None,
            "families": None,
            "episodes_per_cell": per_cell,
        },
        "max_attempts": max_attempts,
    }


def one_shot_report():
    return run_fuzz(
        RunRequest(
            problem="figure-1-mutex",
            instance="figure-1-mutex-even-m",
            seed=7,
            max_steps=64,
        ),
        episodes=EPISODES,
    )


class Killed(RuntimeError):
    """Stands in for SIGKILL: raised after the claim commits."""


class TestFuzzGrid:
    def test_episodes_shard_into_fuzz_cells(self):
        cells = grid_cells(fuzz_config())
        assert [cell.kind for cell in cells] == ["fuzz"] * 4
        assert [cell.payload["episode_base"] for cell in cells] == [0, 4, 8, 12]
        assert all(cell.payload["episodes"] == 4 for cell in cells)

    def test_ragged_final_cell(self):
        cells = grid_cells(fuzz_config(episodes=10, per_cell=4))
        assert [cell.payload["episodes"] for cell in cells] == [4, 4, 2]
        assert cells[-1].payload["episode_base"] == 8

    def test_sharding_is_deterministic(self):
        assert grid_cells(fuzz_config()) == grid_cells(fuzz_config())


class TestFuzzFarmEquivalence:
    def test_sharded_farm_matches_one_shot_engine(self, tmp_path):
        farm = tmp_path / "farm"
        create_farm(farm, fuzz_config())
        result = drain_farm(farm)
        assert result.complete

        summary = aggregate_fuzz_rows(result.rows)
        reference = one_shot_report()
        assert summary["episodes_run"] == reference.episodes_run == EPISODES
        assert summary["steps"] == reference.steps
        # cell boundaries are invisible: same violations, byte for byte
        assert summary["violations"] == [
            v.to_dict() for v in reference.violations
        ]
        assert summary["violations_by_family"] == dict(reference.by_family())

    def test_fuzz_cell_manifests_have_fuzz_kind(self, tmp_path):
        farm = tmp_path / "farm"
        create_farm(farm, fuzz_config())
        drain_farm(farm, worker="w0")
        manifests = load_manifests(farm / "manifests-w0.ndjson")
        assert len(manifests) == 4
        assert {m.kind for m in manifests} == {"fuzz"}


class TestFuzzResumeIdentity:
    def test_killed_farm_resumes_bit_identical(self, tmp_path):
        config = fuzz_config()
        ref = tmp_path / "reference"
        create_farm(ref, config)
        ref_rows = drain_farm(ref).rows

        farm = tmp_path / "farm"
        create_farm(farm, config)

        def kill_on_cell_2(cell):
            if cell.index == 2:
                raise Killed("worker killed after claim")

        with pytest.raises(Killed):
            drain_farm(farm, worker="w0", fault_injector=kill_on_cell_2)
        mid = farm_result(farm)
        assert mid.counts == {"done": 2, "claimed": 1, "pending": 1, "error": 0}

        assert resume_farm(farm) == 1
        final = drain_farm(farm, worker="w0")
        assert final.complete
        assert [
            json.dumps(row.result, sort_keys=True) for row in final.rows
        ] == [
            json.dumps(row.result, sort_keys=True) for row in ref_rows
        ]

    def test_two_workers_match_serial(self, tmp_path):
        config = fuzz_config()
        ref = tmp_path / "reference"
        create_farm(ref, config)
        ref_rows = drain_farm(ref).rows

        farm = tmp_path / "farm"
        create_farm(farm, config)
        result = run_farm(farm, workers=2)
        assert result.complete
        assert [row.result for row in result.rows] == [
            row.result for row in ref_rows
        ]


class TestFuzzFarmCli:
    def test_out_then_resume_round_trip(self, tmp_path, capsys):
        out = tmp_path / "farm"
        code = main([
            "fuzz", "--problem", "figure-1-mutex",
            "--instance", "figure-1-mutex-even-m",
            "--seed", "7", "--episodes", "8", "--max-steps", "64",
            "--episodes-per-cell", "4", "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert code == 1  # violations found, no --expect-violation
        assert "fuzz farm: 2 cell(s)" in captured
        assert "[HIT]" in captured
        # resuming the completed farm re-reports without re-running
        code = main(["fuzz", "--resume", str(out), "--expect-violation"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "0 cell(s) to run" in captured
        assert "[HIT]" in captured

    def test_one_shot_flags_rejected_in_farm_mode(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "fuzz", "--problem", "figure-1-mutex",
                "--out", str(tmp_path / "farm"), "--max-violations", "1",
            ])
        assert "one-shot only" in capsys.readouterr().err
