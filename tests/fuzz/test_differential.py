"""Kernel-differential pinning: at a fixed seed the fuzzer produces
byte-identical reports — schedules, violations, shrunk witnesses,
coverage counts — under the compiled and interpreted kernels.

This holds because packing is a bijection on the reachable closure
(state revisits happen at identical schedule positions) and both
steppers derive identical :class:`~repro.fuzz.strategies.FuzzContext`
snapshots (same enabled order, same pending physical registers), so the
strategies' RNG streams never diverge.
"""

import json

import pytest

from repro.fuzz.engine import run_fuzz
from repro.request import RunRequest

KERNEL_KEYS = ("kernel", "effective_kernel")


def report_dict(instance, kernel, episodes):
    report = run_fuzz(
        RunRequest(
            problem="figure-1-mutex",
            instance=instance,
            seed=7,
            kernel=kernel if kernel == "compiled" else None,
        ),
        episodes=episodes,
    )
    document = report.to_dict()
    assert document.pop("kernel") == (kernel if kernel == "compiled" else "interpreted")
    assert document.pop("effective_kernel") == kernel
    return document


@pytest.mark.parametrize("instance, episodes, expect_found", [
    ("figure-1-mutex-even-m", 8, True),
    ("figure-1-mutex(m=3)", 8, False),
])
def test_compiled_and_interpreted_reports_byte_identical(
    instance, episodes, expect_found
):
    interpreted = report_dict(instance, "interpreted", episodes)
    compiled = report_dict(instance, "compiled", episodes)
    assert bool(interpreted["violations"]) == expect_found
    assert json.dumps(interpreted, sort_keys=True) == json.dumps(
        compiled, sort_keys=True
    )
