"""Shrinker and oracle unit tests, plus minimality properties of the
witnesses the engine publishes."""

import pytest

from repro.fuzz.engine import run_fuzz
from repro.fuzz.shrink import (
    CsPredicates,
    _ddmin,
    _minimal_repeating_unit,
    cycle_is_df_violation,
    cycle_is_of_violation,
    replay_values,
    safety_message,
    shrink_lasso,
)
from repro.problems import get_problem
from repro.request import RunRequest
from repro.runtime.kernel import StepInstance


@pytest.fixture(scope="module")
def mutant():
    spec = get_problem("figure-1-mutex-even-m")
    record = spec.instance("figure-1-mutex-even-m(m=4)")
    system = spec.system(record)
    instance = StepInstance.from_system(system)
    initial = system.scheduler.capture_state()
    return spec, record, instance, initial


class TestDdmin:
    def test_minimises_to_the_required_core(self):
        # predicate: keeps both sentinels, in order
        def predicate(seq):
            return 7 in seq and 9 in seq

        result = _ddmin(tuple(range(20)) + (7, 1, 2, 9), predicate)
        assert sorted(result) == [7, 9]

    def test_already_minimal_is_untouched(self):
        assert _ddmin((5,), lambda seq: 5 in seq) == (5,)

    def test_predicate_never_sees_the_unchanged_sequence(self):
        seen = []

        def predicate(seq):
            seen.append(seq)
            return 1 in seq

        original = (1, 2, 3, 4)
        _ddmin(original, predicate)
        assert original not in seen


class TestMinimalRepeatingUnit:
    def test_collapses_powers(self):
        cycle = (101, 103) * 8
        assert _minimal_repeating_unit(cycle, lambda u: True) == (101, 103)

    def test_respects_validity(self):
        cycle = (101, 103) * 4
        # units shorter than 4 declared invalid: the best valid power wins
        unit = _minimal_repeating_unit(cycle, lambda u: len(u) >= 4)
        assert unit == (101, 103, 101, 103)

    def test_aperiodic_cycle_survives(self):
        cycle = (101, 103, 101)
        assert _minimal_repeating_unit(cycle, lambda u: True) == cycle


class TestOracles:
    def test_cs_predicates_supported_on_mutex_automata(self, mutant):
        _, _, instance, _ = mutant
        assert CsPredicates(instance).supported

    def test_replay_values_walks_a_feasible_schedule(self, mutant):
        _, _, instance, initial = mutant
        pids = instance.pid_order
        state = replay_values(instance, initial, [pids[0], pids[1]])
        assert state is not None and state != initial

    def test_safety_message_none_on_clean_state(self, mutant):
        spec, _, instance, initial = mutant
        assert safety_message(instance, initial, (), spec.invariant) is None

    def test_df_oracle_rejects_unfair_and_empty_cycles(self, mutant):
        _, _, instance, initial = mutant
        predicates = CsPredicates(instance)
        assert not cycle_is_df_violation(instance, initial, (), predicates)
        # a one-pid cycle cannot be fair with two live processes
        pid = instance.pid_order[0]
        assert not cycle_is_df_violation(
            instance, initial, (pid, pid), predicates
        )

    def test_of_oracle_requires_a_single_pid(self, mutant):
        _, _, instance, initial = mutant
        pids = instance.pid_order
        assert not cycle_is_of_violation(instance, initial, tuple(pids[:2]))


class TestShrinkLasso:
    @pytest.fixture(scope="class")
    def raw_violation(self):
        # shrink=False: the raw witness as the engine first sees it
        report = run_fuzz(
            RunRequest(
                problem="figure-1-mutex",
                instance="figure-1-mutex-even-m",
                seed=7,
            ),
            episodes=1,
            shrink=False,
            validate=False,
        )
        assert report.found
        return report.violations[0]

    def test_shrunk_lasso_still_violates(self, mutant, raw_violation):
        _, _, instance, initial = mutant
        predicates = CsPredicates(instance)
        prefix, cycle = shrink_lasso(
            instance, initial,
            raw_violation.prefix, raw_violation.cycle,
            raw_violation.kind, predicates,
        )
        assert len(cycle) <= len(raw_violation.cycle)
        assert len(prefix) <= len(raw_violation.prefix)
        entry = replay_values(instance, initial, prefix)
        assert entry is not None
        assert cycle_is_df_violation(instance, entry, cycle, predicates)

    def test_shrinking_is_idempotent(self, mutant, raw_violation):
        _, _, instance, initial = mutant
        predicates = CsPredicates(instance)
        once = shrink_lasso(
            instance, initial,
            raw_violation.prefix, raw_violation.cycle,
            raw_violation.kind, predicates,
        )
        twice = shrink_lasso(
            instance, initial, once[0], once[1],
            raw_violation.kind, predicates,
        )
        assert twice == once
