"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_default_is_demo(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out and "Figure 3" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "new names" in out

    def test_verify_reports_ok(self, capsys):
        assert main([
            "verify",
            "--instance", "figure-1-mutex(m=3)",
            "--instance", "figure-2-consensus(n=2)",
            "--instance", "figure-3-renaming(n=2)",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("[OK ]") == 3
        assert "safety exhaustive" in out
        assert "deadlock-freedom (Theorem 3.3) holds" in out
        assert "obstruction-freedom (Theorem 4.1) holds" in out
        assert "obstruction-freedom (Theorem 5.1) holds" in out

    def test_verify_mutant_reports_seeded_lasso_as_ok(self, capsys):
        assert main(
            ["verify", "--instance", "figure-1-mutex-even-m(m=4)"]
        ) == 0
        out = capsys.readouterr().out
        assert "[OK ]" in out
        assert "deadlock-freedom (Theorem 3.4) violated (as seeded)" in out
        assert "lasso:" in out and "repeat" in out

    def test_verify_list_enumerates_registry_instances(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure-1-mutex(m=7): deadlock-freedom (Theorem 3.3)" in out
        assert "[expect violation]" in out

    def test_verify_unknown_instance_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "--instance", "no-such-instance"])
        assert "known:" in capsys.readouterr().err

    def test_verify_writes_report_readable_manifests(self, tmp_path, capsys):
        assert main([
            "verify",
            "--instance", "figure-1-mutex(m=3)",
            "--telemetry", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 run(s), all schema-valid" in out
        assert "verified" in out

    def test_attack_finds_violations(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "DF violation" in out
        assert "Theorem 3.1" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_report_renders_a_manifest_directory(self, tmp_path, capsys):
        from repro.obs import RunManifest

        RunManifest.create(
            kind="exploration",
            algorithm="mutex m=3 (n=2)",
            outcome={"verdict": "exhaustive-ok"},
        ).write(tmp_path / "run.json")
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 run(s), all schema-valid" in out
        assert "exhaustive-ok" in out

    def test_report_without_argument_is_a_usage_error(self, capsys):
        assert main(["report"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_help_text_is_honest_about_the_experiment_index(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "E1-E14" in out and "E1-E17" in out
        assert "report" in out
