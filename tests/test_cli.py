"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_default_is_demo(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out and "Figure 3" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "new names" in out

    def test_verify_reports_ok(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert out.count("[OK ]") == 3
        assert "exhaustive-ok" in out

    def test_attack_finds_violations(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "DF violation" in out
        assert "Theorem 3.1" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
