"""Tests for run metrics and contention analysis."""

from repro.analysis.metrics import (
    collect_metrics,
    contention_spread,
    register_contention,
    solo_iterations,
    summarize_distribution,
)
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import RandomAdversary, SoloAdversary
from repro.runtime.system import System

from tests.conftest import pids


def consensus_trace(seed=0, n=2, naming=None):
    inputs = {pid: f"v{k}" for k, pid in enumerate(pids(n))}
    system = System(AnonymousConsensus(n=n), inputs, naming=naming)
    from repro.runtime.adversary import StagedObstructionAdversary

    return system.run(
        StagedObstructionAdversary(prefix_steps=40, seed=seed), max_steps=200_000
    )


class TestCollectMetrics:
    def test_counts_add_up(self):
        trace = consensus_trace()
        metrics = collect_metrics(trace)
        assert metrics.total_reads + metrics.total_writes <= metrics.total_events
        assert metrics.total_events == len(trace)

    def test_steps_per_process_sum_to_total(self):
        trace = consensus_trace()
        metrics = collect_metrics(trace)
        assert sum(metrics.steps_per_process.values()) == metrics.total_events

    def test_decided_count(self):
        trace = consensus_trace()
        assert collect_metrics(trace).decided_count == 2

    def test_max_and_mean_steps(self):
        trace = consensus_trace()
        metrics = collect_metrics(trace)
        assert metrics.max_steps >= metrics.mean_steps > 0


class TestRegisterContention:
    def test_histogram_covers_touched_registers(self):
        trace = consensus_trace()
        histogram = register_contention(trace)
        assert set(histogram) <= set(range(trace.register_count))
        reads = sum(r for r, _ in histogram.values())
        writes = sum(w for _, w in histogram.values())
        metrics = collect_metrics(trace)
        assert reads == metrics.total_reads
        assert writes == metrics.total_writes

    def test_spread_is_at_least_one(self):
        trace = consensus_trace()
        assert contention_spread(trace) >= 1.0

    def test_spread_on_writeless_trace_is_one(self):
        system = System(AnonymousMutex(m=3), pids(2))
        # Take a couple of read-only steps.
        system.scheduler.step(pids(2)[0])
        system.scheduler.trace.final_values = system.memory.snapshot()
        assert contention_spread(system.scheduler.trace) >= 1.0


class TestSoloIterations:
    def test_matches_write_count(self):
        inputs = {pid: f"v{k}" for k, pid in enumerate(pids(3))}
        system = System(AnonymousConsensus(n=3), inputs)
        trace = system.run(SoloAdversary(pids(3)[0]), max_steps=100_000)
        iters = solo_iterations(trace, pids(3)[0])
        assert iters == len(trace.writes_by(pids(3)[0]))
        assert iters <= 5  # 2n - 1


class TestSummarizeDistribution:
    def test_summary_fields(self):
        summary = summarize_distribution([1.0, 2.0, 3.0, 10.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["median"] == 2.5
        assert abs(summary["mean"] - 4.0) < 1e-9

    def test_empty_input(self):
        assert summarize_distribution([]) == {
            "min": 0.0,
            "mean": 0.0,
            "median": 0.0,
            "max": 0.0,
        }
