"""Tests for ASCII table rendering."""

from repro.analysis.tables import render_table


class TestRenderTable:
    def test_headers_and_rows_present(self):
        out = render_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        assert "name" in out and "alpha" in out and "22" in out

    def test_title_is_underlined(self):
        out = render_table(["a"], [[1]], title="My Table")
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_numbers_right_aligned(self):
        out = render_table(["col"], [[1], [1000]])
        lines = out.splitlines()
        assert lines[-2].endswith("   1")
        assert lines[-1].endswith("1000")

    def test_text_left_aligned(self):
        out = render_table(["col", "x"], [["ab", 1], ["abcd", 1]])
        lines = out.splitlines()
        assert lines[-2].startswith("ab  ")

    def test_floats_formatted_two_decimals(self):
        out = render_table(["f"], [[3.14159]])
        assert "3.14" in out and "3.1416" not in out

    def test_bools_rendered_yes_no(self):
        out = render_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_column_widths_accommodate_longest_cell(self):
        out = render_table(["x"], [["very-long-cell-value"]])
        header_line = out.splitlines()[0]
        assert len(header_line) <= len("very-long-cell-value")
