"""Tests for the sweep harness."""

from repro.analysis.experiments import (
    gives_solo_opportunities,
    solo_run,
    sweep,
)
from repro.core.consensus import AnonymousConsensus
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.memory.naming import IdentityNaming, RandomNaming
from repro.runtime.adversary import (
    RandomAdversary,
    RoundRobinAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
)
from repro.spec.consensus_spec import AgreementChecker, ValidityChecker
from repro.spec.mutex_spec import MutualExclusionChecker

from tests.conftest import pids


class TestSweep:
    def test_sweep_covers_all_combinations(self):
        inputs = {pids(2)[0]: "a", pids(2)[1]: "b"}
        result = sweep(
            lambda: AnonymousConsensus(n=2),
            inputs,
            namings=[IdentityNaming(), RandomNaming(0)],
            adversaries=[RandomAdversary(0), RandomAdversary(1)],
            checkers_factory=lambda: [AgreementChecker(), ValidityChecker(inputs)],
            max_steps=50_000,
        )
        assert result.runs == 4
        assert result.all_ok

    def test_sweep_records_violations_without_raising(self):
        result = sweep(
            lambda: NaiveTestAndSetLock(cs_visits=2, cs_steps=3),
            pids(2),
            namings=[IdentityNaming()],
            adversaries=[RandomAdversary(seed) for seed in range(8)],
            checkers_factory=lambda: [MutualExclusionChecker()],
            max_steps=10_000,
        )
        # The naive lock breaks under at least one of eight random
        # schedules (its window is wide: read/claim/verify).
        assert not result.all_ok
        assert result.failures
        assert "critical" in result.describe_failures()

    def test_checkers_factory_receives_adversary_when_it_accepts_one(self):
        inputs = {pids(2)[0]: "a", pids(2)[1]: "b"}
        seen = []

        def factory(adversary):
            seen.append(adversary)
            return [AgreementChecker()]

        sweep(
            lambda: AnonymousConsensus(n=2),
            inputs,
            namings=[IdentityNaming()],
            adversaries=[RandomAdversary(0)],
            checkers_factory=factory,
            max_steps=5_000,
        )
        assert len(seen) == 1

    def test_metric_values_extraction(self):
        inputs = {pids(2)[0]: "a", pids(2)[1]: "b"}
        result = sweep(
            lambda: AnonymousConsensus(n=2),
            inputs,
            namings=[IdentityNaming()],
            adversaries=[StagedObstructionAdversary(prefix_steps=10, seed=0)],
            checkers_factory=lambda: [],
            max_steps=50_000,
        )
        values = result.metric_values(lambda r: r.metrics.total_events)
        assert len(values) == 1 and values[0] > 0


class TestSoloRunHelper:
    def test_solo_run_produces_single_actor_trace(self):
        inputs = {pid: f"v{k}" for k, pid in enumerate(pids(3))}
        trace = solo_run(lambda: AnonymousConsensus(n=3), inputs, pids(3)[0])
        assert {e.pid for e in trace.events} == {pids(3)[0]}
        assert pids(3)[0] in trace.halt_seq


class TestGivesSoloOpportunities:
    def test_classification(self):
        assert gives_solo_opportunities(SoloAdversary(101))
        assert gives_solo_opportunities(StagedObstructionAdversary())
        assert not gives_solo_opportunities(RoundRobinAdversary())
        assert not gives_solo_opportunities(RandomAdversary(0))
