"""Tests for the deliberately limited candidate algorithms."""

import pytest

from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.runtime.adversary import SoloAdversary
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System
from repro.spec.mutex_spec import MutualExclusionChecker

from tests.conftest import pids


class TestNaiveLock:
    def test_uses_one_register(self):
        assert NaiveTestAndSetLock().register_count() == 1

    def test_solo_behaviour_is_correct(self):
        # Alone, the naive lock is exemplary: probe, claim, verify, CS.
        system = System(NaiveTestAndSetLock(cs_visits=2), pids(2))
        trace = system.run(SoloAdversary(pids(2)[0]), max_steps=1_000)
        assert trace.outputs[pids(2)[0]] == 2
        assert trace.final_values == (0,)

    def test_broken_under_some_interleaving(self):
        # Its documented flaw: exhaustive search finds an ME violation.
        system = System(NaiveTestAndSetLock(), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant)
        assert result.violation is not None

    def test_violating_schedule_checks_out_on_a_trace(self):
        system = System(NaiveTestAndSetLock(), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant)
        replay = System(NaiveTestAndSetLock(cs_steps=2), pids(2))
        from repro.runtime.adversary import FixedScheduleAdversary

        trace = replay.run(
            FixedScheduleAdversary(result.violation_schedule), max_steps=10_000
        )
        checker = MutualExclusionChecker()
        assert not checker.holds(trace)

    def test_phase_reporting(self):
        from repro.lowerbounds.candidates import NaiveLockState, NaiveTestAndSetProcess

        process = NaiveTestAndSetProcess(101)
        assert process.phase(NaiveLockState(pc="probe")) == "entry"
        assert process.phase(NaiveLockState(pc="crit")) == "critical"
        assert process.phase(NaiveLockState(pc="release")) == "exit"
        assert process.phase(NaiveLockState(pc="done")) == "remainder"
