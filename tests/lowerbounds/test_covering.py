"""Tests for the §6.1 covering machinery."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.errors import ProtocolError, SchedulingError
from repro.lowerbounds.covering import (
    block_write,
    build_covering_run,
    run_solo_until_covering,
    run_until,
    replay_schedule,
)
from repro.memory.naming import ExplicitNaming, first_visit_permutation
from repro.runtime.adversary import RoundRobinAdversary
from repro.runtime.system import System

from tests.conftest import pids


def covering_system(m=3, n_covers=2):
    """A Fig 1 system where each covering process first visits its target."""
    cover_pids = pids(n_covers)
    naming = ExplicitNaming(
        {pid: first_visit_permutation(k, m) for k, pid in enumerate(cover_pids)}
    )
    algorithm = AnonymousMutex(m=m, unsafe_allow_any_m=(m % 2 == 0 or m < 3))
    return System(algorithm, cover_pids, naming=naming)


class TestRunSoloUntilCovering:
    def test_fig1_covers_its_first_register(self):
        system = covering_system()
        steps = run_solo_until_covering(system.scheduler, pids(2)[0], 0)
        assert steps == 1  # one read of a zero register
        assert system.scheduler.covered_register(pids(2)[0]) == 0

    def test_second_process_covers_distinct_target(self):
        system = covering_system()
        run_solo_until_covering(system.scheduler, pids(2)[0], 0)
        run_solo_until_covering(system.scheduler, pids(2)[1], 1)
        assert system.scheduler.covered_register(pids(2)[1]) == 1

    def test_wrong_target_raises(self):
        system = covering_system()
        with pytest.raises(ProtocolError):
            run_solo_until_covering(system.scheduler, pids(2)[0], 2)

    def test_covering_prefix_is_write_free(self):
        system = covering_system()
        run_solo_until_covering(system.scheduler, pids(2)[0], 0)
        assert system.memory.snapshot() == (0, 0, 0)


class TestBuildCoveringRun:
    def test_covers_all_assigned_registers(self):
        system = covering_system(m=3, n_covers=3)
        assignments = dict(zip(pids(3), (0, 1, 2)))
        build_covering_run(system.scheduler, assignments)
        for pid, target in assignments.items():
            assert system.scheduler.covered_register(pid) == target

    def test_duplicate_targets_rejected(self):
        system = covering_system(m=3, n_covers=2)
        with pytest.raises(SchedulingError):
            build_covering_run(
                system.scheduler, {pids(2)[0]: 0, pids(2)[1]: 0}
            )

    def test_memory_untouched_by_covering(self):
        system = covering_system(m=3, n_covers=3)
        build_covering_run(system.scheduler, dict(zip(pids(3), (0, 1, 2))))
        assert system.memory.snapshot() == (0, 0, 0)


class TestBlockWrite:
    def test_each_covering_process_writes_its_target(self):
        system = covering_system(m=3, n_covers=3)
        build_covering_run(system.scheduler, dict(zip(pids(3), (0, 1, 2))))
        written = block_write(system.scheduler, pids(3))
        assert sorted(written) == [0, 1, 2]
        # Fig 1's pending writes put the writer's id into the register.
        assert system.memory.snapshot() == pids(3)

    def test_non_covering_process_rejected(self):
        system = covering_system()
        with pytest.raises(SchedulingError):
            block_write(system.scheduler, [pids(2)[0]])


class TestRunUntilAndReplay:
    def test_run_until_returns_replayable_schedule(self):
        from repro.runtime.adversary import StagedObstructionAdversary

        inputs = {pids(2)[0]: "a", pids(2)[1]: "b"}
        s1 = System(AnonymousConsensus(n=2), inputs)
        schedule = run_until(
            s1.scheduler,
            StagedObstructionAdversary(prefix_steps=20, seed=3),
            lambda sched: any(sched.runtime(p).halted for p in pids(2)),
            max_steps=100_000,
        )
        assert schedule
        # Replaying the same schedule on a fresh identical system halts
        # the same process at the same point (determinism).
        s2 = System(AnonymousConsensus(n=2), inputs)
        replay_schedule(s2.scheduler, schedule)
        assert s2.scheduler.outputs() == s1.scheduler.outputs()

    def test_run_until_budget_exhaustion_raises(self):
        inputs = {pids(2)[0]: "a", pids(2)[1]: "b"}
        system = System(AnonymousConsensus(n=2), inputs)
        with pytest.raises(SchedulingError):
            run_until(
                system.scheduler,
                RoundRobinAdversary(order=list(pids(2))),
                lambda sched: False,
                max_steps=100,
            )
