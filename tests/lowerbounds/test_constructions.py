"""Tests for the Section 6 covering constructions (Thms 6.2, 6.3, 6.5)."""

import pytest

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.errors import SchedulingError
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.lowerbounds.consensus_space import demonstrate_consensus_space_bound
from repro.lowerbounds.mutex_unbounded import demonstrate_mutex_impossibility
from repro.lowerbounds.renaming_space import demonstrate_renaming_space_bound


class TestMutexConstruction:
    """Theorem 6.2: no deadlock-free mutex with unknown #processes."""

    def test_naive_lock_yields_rho_with_two_in_cs(self):
        report = demonstrate_mutex_impossibility(lambda: NaiveTestAndSetLock())
        assert report.branch == "rho-violation"
        assert "mutual exclusion violated" in report.violation
        assert report.indistinguishability_verified
        assert report.write_set == (0,)
        assert len(report.covering_pids) == 1

    def test_fig1_yields_progress_violation_in_z(self):
        # Figure 1 defends safety; with m fresh processes the P-only run
        # cycles without anyone reaching the critical section.
        report = demonstrate_mutex_impossibility(lambda: AnonymousMutex(m=3))
        assert report.branch == "z-no-progress"
        assert "cycle" in report.violation or "no progress" in report.violation
        assert len(report.covering_pids) == 3  # q wrote all m = 3 registers

    @pytest.mark.parametrize("m", [3, 5])
    def test_fig1_write_set_is_all_registers(self, m):
        report = demonstrate_mutex_impossibility(lambda: AnonymousMutex(m=m))
        assert sorted(report.write_set) == list(range(m))

    def test_report_summary_is_informative(self):
        report = demonstrate_mutex_impossibility(lambda: NaiveTestAndSetLock())
        summary = report.summary()
        assert "Thm 6.2" in summary and "rho-violation" in summary


class TestConsensusConstruction:
    """Theorem 6.3: no OF consensus with n-1 anonymous registers."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_fig2_with_n_minus_1_registers_breaks_agreement(self, n):
        report = demonstrate_consensus_space_bound(
            lambda: AnonymousConsensus(n=n, registers=n - 1)
        )
        assert report.branch == "rho-violation"
        assert "agreement violated" in report.violation
        assert report.indistinguishability_verified
        assert report.q_outcome == "zero"
        assert "one" in report.p_outcomes.values()

    def test_write_set_is_all_n_minus_1_registers(self):
        report = demonstrate_consensus_space_bound(
            lambda: AnonymousConsensus(n=4, registers=3)
        )
        assert sorted(report.write_set) == [0, 1, 2]
        assert len(report.covering_pids) == 3

    def test_construction_consumes_exactly_write_set_processes(self):
        # Clause (2) arithmetic: n - 1 registers -> n - 1 covering
        # processes + q = n processes total, as the theorem requires.
        n = 5
        report = demonstrate_consensus_space_bound(
            lambda: AnonymousConsensus(n=n, registers=n - 1)
        )
        assert len(report.covering_pids) == n - 1

    def test_fig2_at_full_width_resists_with_available_processes(self):
        # Control: with the paper's 2n-1 registers the same pool of n-1
        # covering processes cannot cover q's write set — the engine
        # must report the shortfall rather than fabricate a violation.
        n = 3
        with pytest.raises(SchedulingError):
            demonstrate_consensus_space_bound(
                lambda: AnonymousConsensus(n=n),
                pool_pids=tuple(range(201, 201 + n - 1)),
            )


class TestRenamingConstruction:
    """Theorem 6.5: no OF adaptive perfect renaming with n-1 registers."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_fig3_with_n_minus_1_registers_duplicates_name_1(self, n):
        report = demonstrate_renaming_space_bound(
            lambda: AnonymousRenaming(n=n, registers=n - 1)
        )
        assert report.branch == "rho-violation"
        assert "uniqueness violated" in report.violation
        assert report.q_outcome == 1
        assert 1 in report.p_outcomes.values()
        assert report.indistinguishability_verified

    def test_adaptivity_premise_checked(self):
        # The construction verifies q's solo run really got name 1.
        report = demonstrate_renaming_space_bound(
            lambda: AnonymousRenaming(n=3, registers=2)
        )
        assert report.q_outcome == 1

    def test_full_width_control_cannot_be_covered(self):
        n = 3
        with pytest.raises(SchedulingError):
            demonstrate_renaming_space_bound(
                lambda: AnonymousRenaming(n=n),
                pool_pids=tuple(range(201, 201 + n - 1)),
            )
