"""Tests for the Theorem 3.4 lockstep symmetry attack.

The attack must find a violation against every configuration the theorem
forbids (gcd(m, l) > 1) and must fail against Figure 1 in its legal
regime (odd m, two processes).
"""

import pytest

from repro.core.mutex import AnonymousMutex, MutexState
from repro.errors import ConfigurationError
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.lowerbounds.symmetry import (
    attack_group_size,
    forbidden_pairs,
    relabel_value,
    ring_system,
    run_symmetry_attack,
    states_symmetric,
)

from tests.conftest import pids


class TestRelabelValue:
    def test_maps_listed_ints(self):
        assert relabel_value(101, {101: 0}) == 0

    def test_leaves_unlisted_ints(self):
        assert relabel_value(7, {101: 0}) == 7

    def test_preserves_bools(self):
        assert relabel_value(True, {1: 99}) is True

    def test_recurses_into_tuples_and_frozensets(self):
        mapping = {101: 0, 103: 1}
        assert relabel_value((101, (103, 5)), mapping) == (0, (1, 5))
        assert relabel_value(frozenset({101}), mapping) == frozenset({0})

    def test_recurses_into_dataclasses(self):
        state = MutexState(pc="collect", myview=(101, 103, 0))
        relabeled = relabel_value(state, {101: 0, 103: 1})
        assert relabeled.myview == (0, 1, 0)
        assert relabeled.pc == "collect"


class TestRingSystem:
    def test_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            ring_system(AnonymousMutex(m=3), pids(2))

    def test_builds_equispaced_ring(self):
        system = ring_system(
            AnonymousMutex(m=4, unsafe_allow_any_m=True), pids(2)
        )
        starts = [
            system.memory.view(pid).permutation[0] for pid in pids(2)
        ]
        assert sorted(starts) == [0, 2]


class TestStatesSymmetric:
    def test_initial_states_are_symmetric(self):
        system = ring_system(
            AnonymousMutex(m=4, unsafe_allow_any_m=True), pids(2)
        )
        assert states_symmetric(system, pids(2))

    def test_asymmetric_after_uneven_steps(self):
        system = ring_system(
            AnonymousMutex(m=4, unsafe_allow_any_m=True), pids(2)
        )
        system.scheduler.step(pids(2)[0])
        assert not states_symmetric(system, pids(2))


class TestAttackForbiddenRegime:
    @pytest.mark.parametrize("m", [2, 4, 6, 8, 10])
    def test_even_m_two_processes_violated(self, m):
        # Theorem 3.1's "only if m is odd" half.
        result = run_symmetry_attack(
            AnonymousMutex(m=m, unsafe_allow_any_m=True), pids(2)
        )
        assert result.violated, result.summary()
        assert result.symmetric_throughout

    @pytest.mark.parametrize("m,l", [(6, 3), (9, 3), (10, 5), (8, 4)])
    def test_noncoprime_groups_violated(self, m, l):
        result = run_symmetry_attack(
            AnonymousMutex(m=m, unsafe_allow_any_m=True), pids(l)
        )
        assert result.violated, result.summary()

    def test_fig1_even_m_fails_by_livelock(self):
        # Figure 1 defends mutual exclusion, so the symmetric run starves.
        result = run_symmetry_attack(
            AnonymousMutex(m=4, unsafe_allow_any_m=True), pids(2)
        )
        assert result.violation == "deadlock-freedom"
        assert result.cycle_rounds is not None
        assert result.cs_entries == 0

    def test_naive_lock_fails_by_me_violation_with_two_on_one_ring(self):
        # The naive lock lets both processes through together under
        # lockstep: m=1... needs l | m, so use l=1? No: two processes on
        # one register — gcd(1, 2) = 1, so Theorem 3.4 does not forbid
        # m=1; instead run m=2 with a two-register variant: the naive
        # lock uses one register, so wrap it in a 2-register padding-free
        # scenario is impossible.  We attack it with both processes
        # sharing the single ring cell is l=2, m=1: not equispaceable.
        # The naive lock is instead broken by the covering construction
        # (see test_constructions).  Here we only assert the attack
        # machinery rejects the illegal configuration loudly.
        with pytest.raises(ConfigurationError):
            run_symmetry_attack(NaiveTestAndSetLock(), pids(2))

    def test_summary_strings(self):
        result = run_symmetry_attack(
            AnonymousMutex(m=4, unsafe_allow_any_m=True), pids(2)
        )
        assert "DF violation" in result.summary()


class TestAttackAllowedRegime:
    def test_fig1_odd_m_survives_rotated_lockstep(self):
        # With m=3 and l=2 no equispaced placement exists; under any
        # legal ring placement the algorithm makes progress.  We emulate
        # the nearest-miss adversary: same ring, adjacent offsets.
        from repro.memory.naming import RingNaming
        from repro.runtime.adversary import LockstepAdversary
        from repro.runtime.system import System

        naming = RingNaming({pids(2)[0]: 0, pids(2)[1]: 1})
        system = System(
            AnonymousMutex(m=3, cs_visits=1), pids(2), naming=naming
        )
        trace = system.run(LockstepAdversary(pids(2)), max_steps=100_000)
        # Lockstep stops once somebody halts — i.e. progress happened.
        assert trace.critical_section_entries() >= 1


class TestEnumerationHelpers:
    def test_forbidden_pairs_match_gcd_condition(self):
        from math import gcd

        observed = set(forbidden_pairs(4, [2, 3, 4, 5, 6]))
        for m, l in observed:
            assert gcd(m, l) > 1 and 2 <= l <= 4
        assert (3, 3) in observed
        assert (4, 2) in observed
        assert (5, 2) not in observed

    def test_attack_group_size_is_prime_divisor(self):
        assert attack_group_size(6, 4) == 2
        assert attack_group_size(9, 3) == 3
        assert attack_group_size(10, 4) == 2

    def test_attack_group_size_rejects_coprime(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            attack_group_size(5, 3)
