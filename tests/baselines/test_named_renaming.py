"""Tests for the §5 election-chain renaming baseline."""

import pytest

from repro.baselines.named_renaming import ElectionChainRenaming
from repro.errors import ConfigurationError
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import SoloAdversary, StagedObstructionAdversary
from repro.runtime.system import System
from repro.spec.renaming_spec import (
    NameRangeChecker,
    RenamingTerminationChecker,
    UniqueNamesChecker,
)

from tests.conftest import pids


class TestConfiguration:
    def test_register_count_is_chain_of_blocks(self):
        # (n - 1) election objects of 2n - 1 registers each.
        assert ElectionChainRenaming(n=4).register_count() == 3 * 7
        assert ElectionChainRenaming(n=2).register_count() == 3

    def test_single_process_needs_one_register(self):
        assert ElectionChainRenaming(n=1).register_count() == 1

    def test_not_anonymous(self):
        # "This trivial solution requires a priori agreement on an
        # ordering for the election objects."
        assert not ElectionChainRenaming(n=3).is_anonymous()

    def test_rejected_under_random_naming(self):
        with pytest.raises(ConfigurationError):
            System(ElectionChainRenaming(n=2), pids(2), naming=RandomNaming(0))


class TestBehaviour:
    def test_single_participant_takes_name_1(self):
        system = System(ElectionChainRenaming(n=1), pids(1))
        trace = system.run(SoloAdversary(pids(1)[0]), max_steps=10_000)
        assert trace.outputs[pids(1)[0]] == 1

    def test_solo_among_many_takes_name_1(self):
        system = System(ElectionChainRenaming(n=4), pids(4))
        trace = system.run(SoloAdversary(pids(4)[0]), max_steps=200_000)
        assert trace.outputs[pids(4)[0]] == 1

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_unique_names_in_range(self, n):
        for seed in range(3):
            system = System(ElectionChainRenaming(n=n), pids(n))
            adversary = StagedObstructionAdversary(prefix_steps=60, seed=seed)
            trace = system.run(adversary, max_steps=800_000)
            UniqueNamesChecker().check(trace)
            NameRangeChecker(bound=n).check(trace)
            RenamingTerminationChecker().check(trace)

    def test_perfect_names_cover_1_to_n(self):
        n = 3
        system = System(ElectionChainRenaming(n=n), pids(n))
        adversary = StagedObstructionAdversary(prefix_steps=40, seed=1)
        trace = system.run(adversary, max_steps=800_000)
        assert sorted(trace.outputs.values()) == [1, 2, 3]

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_adaptive_with_k_participants(self, k):
        n = 4
        system = System(ElectionChainRenaming(n=n), pids(n)[:k])
        adversary = StagedObstructionAdversary(prefix_steps=30, seed=k)
        trace = system.run(adversary, max_steps=800_000)
        assert sorted(trace.outputs.values()) == list(range(1, k + 1))

    def test_election_winners_stop_at_their_block(self):
        # The name-1 winner never touches election object 2's registers.
        n = 3
        system = System(ElectionChainRenaming(n=n), pids(n))
        adversary = StagedObstructionAdversary(prefix_steps=0, seed=0)
        trace = system.run(adversary, max_steps=800_000)
        winner = next(pid for pid, name in trace.outputs.items() if name == 1)
        block = 2 * n - 1
        touched = {e.physical_index for e in trace.events_by(winner)}
        assert all(index < block for index in touched)
