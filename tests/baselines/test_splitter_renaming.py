"""Tests for the Moir-Anderson splitter-grid renaming baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.splitter_renaming import (
    SplitterRenaming,
    triangular_index,
)
from repro.errors import ConfigurationError
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import (
    AlternatingBurstAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    SoloAdversary,
)
from repro.runtime.exploration import explore, unique_names_invariant
from repro.runtime.system import System
from repro.spec.renaming_spec import UniqueNamesChecker

from tests.conftest import pids


class TestTriangularIndex:
    def test_diagonal_enumeration(self):
        assert triangular_index(0, 0) == 0
        assert triangular_index(0, 1) == 1
        assert triangular_index(1, 0) == 2
        assert triangular_index(0, 2) == 3
        assert triangular_index(1, 1) == 4
        assert triangular_index(2, 0) == 5

    @given(
        a=st.tuples(st.integers(0, 20), st.integers(0, 20)),
        b=st.tuples(st.integers(0, 20), st.integers(0, 20)),
    )
    @settings(max_examples=60)
    def test_injective(self, a, b):
        if a != b:
            assert triangular_index(*a) != triangular_index(*b)


class TestConfiguration:
    def test_register_count_two_per_cell(self):
        # n(n+1)/2 splitters, 2 registers each.
        assert SplitterRenaming(n=3).register_count() == 12
        assert SplitterRenaming(n=1).register_count() == 2

    def test_name_space_size(self):
        assert SplitterRenaming(n=4).name_space() == 10

    def test_named_model_only(self):
        assert not SplitterRenaming(n=2).is_anonymous()
        with pytest.raises(ConfigurationError):
            System(SplitterRenaming(n=2), pids(2), naming=RandomNaming(0))

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            SplitterRenaming(n=0)


class TestBehaviour:
    def test_solo_process_stops_at_the_first_splitter(self):
        system = System(SplitterRenaming(n=3), pids(3))
        trace = system.run(SoloAdversary(pids(3)[0]), max_steps=100)
        assert trace.outputs[pids(3)[0]] == 1
        assert trace.steps_taken(pids(3)[0]) == 4  # one full splitter pass

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_unique_names_within_triangular_space(self, n):
        bound = n * (n + 1) // 2
        for seed in range(4):
            system = System(SplitterRenaming(n=n), pids(n))
            trace = system.run(RandomAdversary(seed), max_steps=100_000)
            assert trace.all_halted()
            UniqueNamesChecker().check(trace)
            assert all(1 <= name <= bound for name in trace.outputs.values())

    def test_wait_free_step_bound(self):
        # Every process finishes within 4 steps per splitter and at most
        # n splitters on its path — under ANY schedule, no solo needed.
        n = 4
        for seed in range(6):
            system = System(SplitterRenaming(n=n), pids(n))
            adversary = AlternatingBurstAdversary(seed=seed, max_burst=7)
            trace = system.run(adversary, max_steps=100_000)
            assert trace.all_halted()
            for pid in pids(n):
                assert trace.steps_taken(pid) <= 4 * n

    def test_wait_free_even_under_strict_round_robin(self):
        # The contrast with Figure 3: no obstruction proviso at all.
        system = System(SplitterRenaming(n=3), pids(3))
        trace = system.run(RoundRobinAdversary(), max_steps=10_000)
        assert trace.all_halted()
        UniqueNamesChecker().check(trace)

    @staticmethod
    def _splitter_invariant(bound):
        """Distinct names within {1 .. n(n+1)/2} — NOT the perfect-range
        invariant, which this algorithm deliberately does not satisfy."""

        def invariant(system):
            outputs = {
                pid: out
                for pid, out in system.scheduler.outputs().items()
                if out is not None
            }
            names = list(outputs.values())
            if len(set(names)) != len(names):
                return f"duplicate names: {outputs}"
            bad = {p: v for p, v in outputs.items() if not 1 <= v <= bound}
            if bad:
                return f"names outside 1..{bound}: {bad}"
            return None

        return invariant

    def test_exhaustive_two_processes(self):
        system = System(SplitterRenaming(n=2), pids(2), record_trace=False)
        result = explore(
            system, self._splitter_invariant(3), max_states=500_000
        )
        assert result.complete and result.ok, result.violation
        assert result.stuck_states == 0

    def test_exhaustive_three_processes(self):
        system = System(SplitterRenaming(n=3), pids(3), record_trace=False)
        result = explore(
            system, self._splitter_invariant(6), max_states=2_000_000
        )
        assert result.complete and result.ok, result.violation

    def test_at_most_one_stop_per_splitter(self):
        # The splitter guarantee, observed: no two processes acquire the
        # same cell (that IS name uniqueness), and the winner of cell
        # (0,0) under solo-first schedules is the first runner.
        system = System(SplitterRenaming(n=3), pids(3))
        p1, p2, p3 = pids(3)
        system.scheduler.run_solo_until_halt(p1)
        assert system.scheduler.output_of(p1) == 1
        system.scheduler.run_solo_until_halt(p2)
        system.scheduler.run_solo_until_halt(p3)
        names = [system.scheduler.output_of(p) for p in (p1, p2, p3)]
        assert len(set(names)) == 3
