"""Tests for the named consensus baseline and the §3.2 padding wrapper."""

import pytest

from repro.baselines.named_consensus import NamedConsensus, PaddedAlgorithm
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.errors import ConfigurationError
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import (
    RandomAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
)
from repro.runtime.exploration import agreement_invariant, conjoin, explore, validity_invariant
from repro.runtime.system import System
from repro.spec.consensus_spec import (
    AgreementChecker,
    ObstructionFreeTerminationChecker,
    ValidityChecker,
)

from tests.conftest import pids


def inputs_for(n):
    return {pid: f"v{k}" for k, pid in enumerate(pids(n))}


class TestNamedConsensus:
    def test_not_anonymous(self):
        assert not NamedConsensus(n=3).is_anonymous()

    def test_rejected_under_random_naming(self):
        with pytest.raises(ConfigurationError):
            System(NamedConsensus(n=2), inputs_for(2), naming=RandomNaming(0))

    def test_slots_get_staggered_offsets(self):
        algorithm = NamedConsensus(n=3)
        automata = [algorithm.automaton_for(pid, "v") for pid in pids(3)]
        offsets = [a.offset for a in automata]
        assert len(set(offsets)) == 3

    def test_solo_run_decides_input(self):
        system = System(NamedConsensus(n=2), inputs_for(2))
        trace = system.run(SoloAdversary(pids(2)[0]), max_steps=100_000)
        assert trace.outputs[pids(2)[0]] == "v0"

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_agreement_validity_termination(self, n):
        inputs = inputs_for(n)
        for seed in range(3):
            system = System(NamedConsensus(n=n), inputs)
            adversary = StagedObstructionAdversary(prefix_steps=60, seed=seed)
            trace = system.run(adversary, max_steps=400_000)
            AgreementChecker().check(trace)
            ValidityChecker(inputs).check(trace)
            ObstructionFreeTerminationChecker().check(trace)

    def test_exhaustive_n2(self):
        system = System(NamedConsensus(n=2), inputs_for(2), record_trace=False)
        result = explore(
            system,
            conjoin(agreement_invariant, validity_invariant),
            max_states=400_000,
            max_depth=100_000,
        )
        assert result.ok and result.complete

    def test_staggered_writes_reduce_collisions_vs_anonymous(self):
        # The named-model advantage the docstring claims: under identical
        # round-robin contention, staggered write placement produces at
        # most as many total events to completion (usually fewer).
        inputs = inputs_for(3)
        named_steps, anon_steps = [], []
        for seed in range(5):
            named = System(NamedConsensus(n=3), inputs)
            anon = System(AnonymousConsensus(n=3), inputs)
            adversary = StagedObstructionAdversary(prefix_steps=80, seed=seed)
            named_steps.append(len(named.run(adversary, max_steps=400_000)))
            adversary = StagedObstructionAdversary(prefix_steps=80, seed=seed)
            anon_steps.append(len(anon.run(adversary, max_steps=400_000)))
        assert sum(named_steps) <= sum(anon_steps) * 1.5  # no blow-up


class TestPaddedAlgorithm:
    def test_padding_below_base_rejected(self):
        with pytest.raises(ConfigurationError):
            PaddedAlgorithm(AnonymousConsensus(n=2), 2)

    def test_padding_reports_total_registers(self):
        padded = PaddedAlgorithm(AnonymousConsensus(n=2), 8)
        assert padded.register_count() == 8

    def test_padding_is_never_anonymous(self):
        # §3.2 property 1 requires agreeing on which registers to ignore.
        padded = PaddedAlgorithm(AnonymousConsensus(n=2), 8)
        assert not padded.is_anonymous()

    def test_padded_run_ignores_extra_registers(self):
        inputs = inputs_for(2)
        base = AnonymousConsensus(n=2)
        system = System(PaddedAlgorithm(base, 7), inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=40, seed=1), max_steps=200_000
        )
        AgreementChecker().check(trace)
        # The pad (registers 3..6) stayed at the initial value.
        assert all(v == base.initial_value() for v in trace.final_values[3:])

    def test_padded_mutex_works_with_even_total(self):
        # Fig 1 with m=3 padded to 4 total registers: legal in the named
        # model — exactly what Theorem 3.1 forbids anonymously.
        inputs = pids(2)
        system = System(PaddedAlgorithm(AnonymousMutex(m=3, cs_visits=1), 4), inputs)
        trace = system.run(RandomAdversary(3), max_steps=100_000)
        assert trace.stop_reason == "all-halted"

    def test_padded_rejected_under_non_identity_naming(self):
        with pytest.raises(ConfigurationError):
            System(
                PaddedAlgorithm(AnonymousMutex(m=3), 4),
                pids(2),
                naming=RandomNaming(0),
            )

    def test_padded_name_mentions_base(self):
        padded = PaddedAlgorithm(AnonymousConsensus(n=2), 5)
        assert "padded" in padded.name and "m=5" in padded.name
