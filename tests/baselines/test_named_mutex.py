"""Tests for the named-model mutex baselines (Peterson, tournament)."""

import pytest

from repro.baselines.named_mutex import (
    PetersonMutex,
    TournamentMutex,
    TournamentMutexProcess,
)
from repro.errors import ConfigurationError
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import RandomAdversary, RoundRobinAdversary, SoloAdversary
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System
from repro.spec.mutex_spec import DeadlockFreedomChecker, MutualExclusionChecker

from tests.conftest import pids


class TestConfiguration:
    def test_peterson_uses_three_registers(self):
        assert PetersonMutex().register_count() == 3

    def test_tournament_register_count_grows_with_tree(self):
        assert TournamentMutex(n=2).register_count() == 3
        assert TournamentMutex(n=4).register_count() == 9
        assert TournamentMutex(n=5).register_count() == 21  # 8 slots

    def test_not_anonymous(self):
        assert not PetersonMutex().is_anonymous()
        assert not TournamentMutex(n=4).is_anonymous()

    def test_rejected_under_non_identity_naming(self):
        with pytest.raises(ConfigurationError):
            System(PetersonMutex(), pids(2), naming=RandomNaming(1))

    def test_n_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            TournamentMutex(n=1)

    def test_slot_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            TournamentMutexProcess(101, slot=2, n_slots=2)

    def test_explicit_slot_via_input(self):
        algorithm = TournamentMutex(n=2)
        automaton = algorithm.automaton_for(101, input=1)
        assert automaton.slot == 1

    def test_path_reaches_root(self):
        process = TournamentMutexProcess(101, slot=3, n_slots=4)
        assert [node for node, _ in process.path] == [3, 1]


class TestPetersonBehaviour:
    def test_solo_process_enters(self):
        system = System(PetersonMutex(cs_visits=2), pids(2))
        trace = system.run(SoloAdversary(pids(2)[0]), max_steps=10_000)
        assert trace.outputs[pids(2)[0]] == 2

    def test_mutual_exclusion_sampled(self):
        for seed in range(5):
            system = System(PetersonMutex(cs_visits=2, cs_steps=3), pids(2))
            trace = system.run(RandomAdversary(seed), max_steps=50_000)
            MutualExclusionChecker().check(trace)
            assert trace.stop_reason == "all-halted"

    def test_deadlock_freedom_round_robin(self):
        # Unlike anonymous even-m configurations, Peterson has no
        # symmetric livelock: turn-taking breaks ties.
        system = System(PetersonMutex(cs_visits=2), pids(2))
        trace = system.run(RoundRobinAdversary(), max_steps=50_000)
        assert trace.stop_reason == "all-halted"
        DeadlockFreedomChecker().check(trace)

    def test_exhaustive_model_check(self):
        system = System(PetersonMutex(cs_visits=1), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant, max_states=500_000)
        assert result.complete and result.ok
        assert result.stuck_states == 0


class TestTournamentBehaviour:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_mutual_exclusion_and_completion(self, n):
        for seed in range(3):
            system = System(TournamentMutex(n=n, cs_visits=1, cs_steps=2), pids(n))
            trace = system.run(RandomAdversary(seed), max_steps=500_000)
            MutualExclusionChecker().check(trace)
            assert trace.stop_reason == "all-halted", trace.stop_reason
            assert trace.critical_section_entries() == n

    def test_exhaustive_model_check_n2(self):
        system = System(TournamentMutex(n=2, cs_visits=1), pids(2), record_trace=False)
        result = explore(system, mutual_exclusion_invariant, max_states=500_000)
        assert result.complete and result.ok

    def test_any_register_count_allowed_unlike_anonymous(self):
        # §3.2: the named model has no oddness constraint — the
        # tournament for 4 processes uses 9 registers, for 3 uses 9 too,
        # and Peterson uses 3; none of this needs the Theorem 3.1 parity.
        assert TournamentMutex(n=3).register_count() == 9

    def test_three_processes_supported_where_fig1_is_open(self):
        # The paper's Fig 1 is two-process only (n > 2 is open); the
        # named tournament handles n = 3 out of the box.
        system = System(TournamentMutex(n=3, cs_visits=1), pids(3))
        trace = system.run(RandomAdversary(7), max_steps=500_000)
        assert trace.stop_reason == "all-halted"
        MutualExclusionChecker().check(trace)
