"""Tests for the Figure 3 adaptive perfect renaming algorithm.

Covers Theorem 5.1 (obstruction-free termination), Theorem 5.2
(uniqueness and range {1..n}), Theorem 5.3 (adaptivity: k participants
acquire {1..k}), the round/history mechanics of the figure, and the
encoded-record mode.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.renaming import (
    AnonymousRenaming,
    AnonymousRenamingProcess,
    RenamingState,
)
from repro.errors import ConfigurationError
from repro.memory.naming import RandomNaming
from repro.memory.records import RenamingRecord
from repro.runtime.adversary import (
    RandomAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
)
from repro.runtime.exploration import explore, unique_names_invariant
from repro.runtime.system import System
from repro.spec.renaming_spec import (
    NameRangeChecker,
    RenamingTerminationChecker,
    UniqueNamesChecker,
)

from tests.conftest import namings_for, pids, progress_adversaries


class TestValidation:
    def test_register_count_is_2n_minus_1(self):
        for n in (1, 2, 4, 6):
            assert AnonymousRenaming(n=n).register_count() == 2 * n - 1

    def test_register_override(self):
        assert AnonymousRenaming(n=4, registers=3).register_count() == 3

    def test_non_positive_n_rejected(self):
        with pytest.raises(ConfigurationError):
            AnonymousRenaming(n=0)


class TestSoloBehaviour:
    def test_solo_process_gets_name_1(self):
        # Adaptivity with k=1: the lone participant must take name 1.
        system = System(AnonymousRenaming(n=4), pids(4))
        trace = system.run(SoloAdversary(pids(4)[0]), max_steps=100_000)
        assert trace.outputs[pids(4)[0]] == 1

    def test_single_process_instance(self):
        system = System(AnonymousRenaming(n=1), pids(1))
        trace = system.run(SoloAdversary(pids(1)[0]), max_steps=10_000)
        assert trace.outputs[pids(1)[0]] == 1

    def test_solo_iterations_bounded_by_registers(self):
        # One write per inner iteration; a solo round fills 2n-1 entries.
        n = 3
        system = System(AnonymousRenaming(n=n), pids(n))
        pid = pids(n)[0]
        trace = system.run(SoloAdversary(pid), max_steps=100_000)
        assert len(trace.writes_by(pid)) <= 2 * n - 1


class TestFullParticipation:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_names_unique_in_range_all_terminate(self, n):
        for naming in namings_for(pids(n), 2 * n - 1):
            for adversary in progress_adversaries(range(2)):
                system = System(AnonymousRenaming(n=n), pids(n), naming=naming)
                trace = system.run(adversary, max_steps=500_000)
                UniqueNamesChecker().check(trace)
                NameRangeChecker(bound=n).check(trace)
                RenamingTerminationChecker().check(trace)

    def test_perfect_renaming_uses_every_name(self):
        n = 4
        system = System(AnonymousRenaming(n=n), pids(n))
        adversary = StagedObstructionAdversary(prefix_steps=80, seed=5)
        trace = system.run(adversary, max_steps=500_000)
        assert sorted(trace.outputs.values()) == [1, 2, 3, 4]

    @given(seed=st.integers(0, 10_000), naming_seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_uniqueness_and_range(self, seed, naming_seed):
        n = 3
        system = System(
            AnonymousRenaming(n=n), pids(n), naming=RandomNaming(naming_seed)
        )
        adversary = StagedObstructionAdversary(prefix_steps=seed % 120, seed=seed)
        trace = system.run(adversary, max_steps=500_000)
        UniqueNamesChecker().check(trace)
        NameRangeChecker(bound=n).check(trace)
        RenamingTerminationChecker().check(trace)

    def test_safety_holds_even_without_termination(self):
        # Names handed out so far are unique even in truncated runs.
        n = 3
        for seed in range(4):
            system = System(AnonymousRenaming(n=n), pids(n))
            trace = system.run(RandomAdversary(seed), max_steps=15_000)
            UniqueNamesChecker().check(trace)
            NameRangeChecker(bound=n).check(trace)


class TestAdaptivity:
    """Theorem 5.3: k participants acquire names from {1..k}."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_of_4_participants_use_names_1_to_k(self, k):
        n = 4
        participants = pids(n)[:k]
        system = System(AnonymousRenaming(n=n), participants)
        adversary = StagedObstructionAdversary(prefix_steps=50, seed=k)
        trace = system.run(adversary, max_steps=500_000)
        assert sorted(trace.outputs.values()) == list(range(1, k + 1))

    def test_adaptivity_bound_is_tight_not_just_n(self):
        # 2 participants of a 5-process instance: names must be {1, 2},
        # not merely within {1..5}.
        system = System(AnonymousRenaming(n=5), pids(2))
        adversary = StagedObstructionAdversary(prefix_steps=30, seed=7)
        trace = system.run(adversary, max_steps=500_000)
        NameRangeChecker(bound=2).check(trace)


class TestRoundsAndHistory:
    def test_loser_records_winner_in_history(self):
        n = 2
        p1, p2 = pids(2)
        system = System(AnonymousRenaming(n=n), (p1, p2))
        # p1 finishes alone (wins round 1), then p2 runs.
        system.scheduler.run_solo_until_halt(p1)
        system.scheduler.run_solo_until_halt(p2)
        assert system.scheduler.output_of(p1) == 1
        assert system.scheduler.output_of(p2) == 2

    def test_winner_learns_election_from_history(self):
        # p1 reaches the brink of winning round 1, p2 completes the round
        # on p1's behalf, moves on, and p1 must learn its name from the
        # history (line 5) rather than from its own exit test.
        n = 2
        p1, p2 = pids(2)
        system = System(AnonymousRenaming(n=n), (p1, p2))
        scheduler = system.scheduler
        # Let p1 write everywhere but not yet re-collect.
        while True:
            state = scheduler.runtime(p1).state
            values = system.memory.snapshot()
            if all(
                isinstance(v, RenamingRecord) and v.id == p1 for v in values
            ):
                break
            scheduler.step(p1)
        # Now p2 runs alone: it must adopt p1 (majority), elect p1 in
        # round 1, then take round 2 for itself.
        scheduler.run_solo_until_halt(p2)
        assert scheduler.output_of(p2) == 2
        # p1 finishes and discovers its election via someone's history.
        scheduler.run_solo_until_halt(p1)
        assert scheduler.output_of(p1) == 1

    def test_round_numbers_never_exceed_n(self):
        n = 3
        system = System(AnonymousRenaming(n=n), pids(n))
        adversary = StagedObstructionAdversary(prefix_steps=60, seed=2)
        trace = system.run(adversary, max_steps=500_000)
        rounds = [
            e.op.value.round
            for e in trace.events
            if e.is_write() and isinstance(e.op.value, RenamingRecord)
        ]
        assert max(rounds) <= n


class TestExhaustive:
    def test_n2_fully_explored_unique_names(self):
        system = System(AnonymousRenaming(n=2), pids(2), record_trace=False)
        result = explore(
            system, unique_names_invariant, max_states=400_000, max_depth=100_000
        )
        assert result.ok, result.violation
        assert result.complete, result.summary()


class TestEncodedRecords:
    def test_registers_hold_plain_integers(self):
        system = System(AnonymousRenaming(n=2, encode_records=True), pids(2))
        system.scheduler.step(pids(2)[0])
        assert all(isinstance(v, int) for v in system.memory.snapshot())

    def test_encoded_run_assigns_unique_names(self):
        n = 3
        system = System(AnonymousRenaming(n=n, encode_records=True), pids(n))
        adversary = StagedObstructionAdversary(prefix_steps=40, seed=9)
        trace = system.run(adversary, max_steps=500_000)
        assert sorted(trace.outputs.values()) == [1, 2, 3]
