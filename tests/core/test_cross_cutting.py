"""Cross-cutting core-algorithm tests: encoded-record model checking,
symmetry-relabelling properties, and mixed-algorithm sanity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex, MutexState
from repro.core.renaming import AnonymousRenaming, RenamingState
from repro.lowerbounds.symmetry import relabel_value
from repro.memory.records import RenamingRecord
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    explore,
    unique_names_invariant,
    validity_invariant,
)
from repro.runtime.system import System

from tests.conftest import pids


class TestEncodedRecordsUnderExploration:
    """The §4.1 single-integer encodings, exhaustively model-checked."""

    def test_encoded_consensus_n2_exhaustive(self):
        inputs = {101: 1, 103: 2}
        system = System(
            AnonymousConsensus(n=2, encode_records=True), inputs,
            record_trace=False,
        )
        result = explore(
            system,
            conjoin(agreement_invariant, validity_invariant),
            max_states=500_000,
            max_depth=100_000,
        )
        assert result.complete and result.ok, result.violation

    def test_encoded_and_plain_explorations_have_same_state_count(self):
        # The encoding is a bijection on register values, so the state
        # graphs are isomorphic — equal sizes is a cheap strong check.
        inputs = {101: 1, 103: 2}
        plain = System(AnonymousConsensus(n=2), inputs, record_trace=False)
        encoded = System(
            AnonymousConsensus(n=2, encode_records=True), inputs,
            record_trace=False,
        )
        r_plain = explore(plain, agreement_invariant, max_states=500_000)
        r_encoded = explore(encoded, agreement_invariant, max_states=500_000)
        assert r_plain.states_explored == r_encoded.states_explored

    def test_encoded_renaming_n2_exhaustive(self):
        system = System(
            AnonymousRenaming(n=2, encode_records=True), pids(2),
            record_trace=False,
        )
        result = explore(
            system, unique_names_invariant, max_states=500_000, max_depth=100_000
        )
        assert result.complete and result.ok, result.violation


class TestRelabelProperties:
    @given(
        pc=st.sampled_from(["scan_read", "collect", "wait"]),
        j=st.integers(0, 4),
        view=st.tuples(*[st.sampled_from([0, 101, 103])] * 3),
    )
    @settings(max_examples=40)
    def test_relabel_roundtrip_on_mutex_states(self, pc, j, view):
        state = MutexState(pc=pc, j=j, myview=view)
        mapping = {101: 999_101, 103: 999_103}
        inverse = {v: k for k, v in mapping.items()}
        assert relabel_value(relabel_value(state, mapping), inverse) == state

    def test_relabel_renaming_state_with_history(self):
        state = RenamingState(
            mypref=101,
            myround=2,
            myhistory=frozenset({(103, 1)}),
        )
        relabeled = relabel_value(state, {101: 1, 103: 2})
        assert relabeled.mypref == 1
        assert relabeled.myhistory == frozenset({(2, 1)})

    def test_relabel_identity_mapping_is_noop(self):
        state = MutexState(pc="collect", myview=(101, 0, 103))
        assert relabel_value(state, {}) == state


class TestAlgorithmComposition:
    def test_consensus_then_renaming_on_fresh_systems(self):
        """Typical application stacking: elect a configuration, then
        compact the names — two independent systems, same pids."""
        from repro.core.election import AnonymousElection
        from repro.runtime.adversary import StagedObstructionAdversary

        election = System(AnonymousElection(n=3), pids(3))
        t1 = election.run(
            StagedObstructionAdversary(prefix_steps=30, seed=1), max_steps=300_000
        )
        leader = next(iter(t1.decided().values()))
        assert leader in pids(3)

        renaming = System(AnonymousRenaming(n=3), pids(3))
        t2 = renaming.run(
            StagedObstructionAdversary(prefix_steps=30, seed=2), max_steps=500_000
        )
        assert sorted(t2.outputs.values()) == [1, 2, 3]

    def test_mutex_visits_with_heterogeneous_inputs(self):
        # Per-process cs_visits via inputs: {pid: visits}.
        system = System(
            AnonymousMutex(m=3), {pids(2)[0]: 3, pids(2)[1]: 1}
        )
        from repro.runtime.adversary import RandomAdversary

        trace = system.run(RandomAdversary(4), max_steps=200_000)
        assert trace.outputs[pids(2)[0]] == 3
        assert trace.outputs[pids(2)[1]] == 1
