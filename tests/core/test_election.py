"""Tests for election via consensus (the §4 note)."""

import pytest

from repro.core.election import AnonymousElection, elected_leader
from repro.errors import ConfigurationError
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import SoloAdversary, StagedObstructionAdversary
from repro.runtime.system import System
from repro.spec.consensus_spec import ElectionChecker

from tests.conftest import pids


class TestElection:
    def test_inputs_are_pinned_to_identifiers(self):
        automaton = AnonymousElection(n=2).automaton_for(101)
        assert automaton.input == 101

    def test_conflicting_explicit_input_rejected(self):
        with pytest.raises(ConfigurationError):
            AnonymousElection(n=2).automaton_for(101, input=999)

    def test_matching_explicit_input_tolerated(self):
        automaton = AnonymousElection(n=2).automaton_for(101, input=101)
        assert automaton.input == 101

    def test_solo_process_elects_itself(self):
        system = System(AnonymousElection(n=3), pids(3))
        trace = system.run(SoloAdversary(pids(3)[0]), max_steps=100_000)
        assert trace.outputs[pids(3)[0]] == pids(3)[0]

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_unanimous_leader_among_participants(self, n):
        for seed in range(3):
            system = System(
                AnonymousElection(n=n), pids(n), naming=RandomNaming(seed)
            )
            adversary = StagedObstructionAdversary(prefix_steps=50, seed=seed)
            trace = system.run(adversary, max_steps=300_000)
            ElectionChecker().check(trace)
            assert len(trace.decided()) == n

    def test_elected_leader_helper(self):
        system = System(AnonymousElection(n=2), pids(2))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=20, seed=1), max_steps=100_000
        )
        leader = elected_leader(trace.outputs)
        assert leader in pids(2)

    def test_elected_leader_none_when_undecided(self):
        assert elected_leader({}) is None

    def test_elected_leader_raises_on_disagreement(self):
        with pytest.raises(ValueError):
            elected_leader({101: 101, 103: 103})

    def test_uses_2n_minus_1_registers(self):
        assert AnonymousElection(n=4).register_count() == 7
