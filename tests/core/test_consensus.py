"""Tests for the Figure 2 memory-anonymous obstruction-free consensus.

Covers Theorem 4.1 (agreement + obstruction-free termination, including
the quantitative 2n-1 solo iteration bound), Theorem 4.2 (validity), the
register-count arithmetic (2n-1, majority threshold n), exhaustive model
checking of small instances, and the single-integer record encoding mode
(§4.1 remark).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consensus import (
    AnonymousConsensus,
    AnonymousConsensusProcess,
    choose_index,
    majority_value,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import (
    CrashAdversary,
    RandomAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
)
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    explore,
    validity_invariant,
)
from repro.runtime.system import System
from repro.spec.consensus_spec import (
    AgreementChecker,
    ObstructionFreeTerminationChecker,
    SoloStepBoundChecker,
    ValidityChecker,
)

from tests.conftest import namings_for, pids, progress_adversaries, safety_adversaries


def inputs_for(n, values=None):
    values = values or [f"v{k}" for k in range(n)]
    return dict(zip(pids(n), values))


class TestHelpers:
    def test_majority_value_finds_threshold_winner(self):
        assert majority_value(["a", "a", "b"], 2) == "a"

    def test_majority_value_ignores_zero(self):
        assert majority_value([0, 0, 0, "a"], 1) == "a"

    def test_majority_value_none_when_below_threshold(self):
        assert majority_value(["a", "b", "c"], 2) is None

    def test_majority_value_two_winners_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            majority_value(["a", "a", "b", "b"], 2)

    def test_choose_index_first_and_last(self):
        view = ["x", "y", "x", "y"]
        assert choose_index(view, lambda v: v == "y", "first", 0) == 1
        assert choose_index(view, lambda v: v == "y", "last", 0) == 3

    def test_choose_index_spread_is_deterministic(self):
        view = ["x"] * 6
        a = choose_index(view, lambda v: True, "spread", salt=("s", 1))
        b = choose_index(view, lambda v: True, "spread", salt=("s", 1))
        assert a == b

    def test_choose_index_no_match_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            choose_index(["x"], lambda v: False, "first", 0)

    def test_choose_index_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_index(["x"], lambda v: True, "mystery", 0)


class TestValidation:
    def test_register_count_is_2n_minus_1(self):
        for n in (1, 2, 3, 5, 8):
            assert AnonymousConsensus(n=n).register_count() == 2 * n - 1

    def test_register_override_allowed(self):
        assert AnonymousConsensus(n=3, registers=2).register_count() == 2

    def test_zero_input_rejected(self):
        with pytest.raises(ConfigurationError):
            AnonymousConsensus(n=2).automaton_for(101, 0)

    def test_none_input_rejected(self):
        with pytest.raises(ConfigurationError):
            AnonymousConsensus(n=2).automaton_for(101, None)

    def test_non_positive_n_rejected(self):
        with pytest.raises(ConfigurationError):
            AnonymousConsensus(n=0)


class TestSoloTermination:
    """Theorem 4.1's termination argument, quantitatively."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_solo_run_decides_own_input(self, n):
        inputs = inputs_for(n)
        pid = pids(n)[0]
        system = System(AnonymousConsensus(n=n), inputs)
        trace = system.run(SoloAdversary(pid), max_steps=1_000_000)
        assert trace.outputs[pid] == inputs[pid]

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_solo_iteration_bound_2n_minus_1(self, n):
        # "after at most 2n-1 iterations the values of all the 2n-1
        # entries will equal (j, v)" — one write per iteration.
        inputs = inputs_for(n)
        pid = pids(n)[0]
        system = System(AnonymousConsensus(n=n), inputs)
        trace = system.run(SoloAdversary(pid), max_steps=1_000_000)
        assert len(trace.writes_by(pid)) <= 2 * n - 1

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_solo_step_bound_checker_passes(self, n):
        m = 2 * n - 1
        inputs = inputs_for(n)
        pid = pids(n)[0]
        system = System(AnonymousConsensus(n=n), inputs)
        trace = system.run(SoloAdversary(pid), max_steps=1_000_000)
        # Each iteration costs m reads + 1 write; plus the final collect.
        SoloStepBoundChecker(max_steps=m * (m + 1) + m).check(trace)

    def test_solo_after_contention_decides(self):
        # The obstruction-freedom scenario: contention, then solitude.
        inputs = inputs_for(3)
        system = System(AnonymousConsensus(n=3), inputs)
        adversary = StagedObstructionAdversary(prefix_steps=100, seed=3)
        trace = system.run(adversary, max_steps=200_000)
        ObstructionFreeTerminationChecker().check(trace)


class TestAgreementAndValidity:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_agreement_under_progress_adversaries(self, n):
        inputs = inputs_for(n)
        for naming in namings_for(pids(n), 2 * n - 1):
            for adversary in progress_adversaries(range(3)):
                system = System(AnonymousConsensus(n=n), inputs, naming=naming)
                trace = system.run(adversary, max_steps=300_000)
                AgreementChecker().check(trace)
                ValidityChecker(inputs).check(trace)
                ObstructionFreeTerminationChecker().check(trace)

    @pytest.mark.parametrize("n", [2, 3])
    def test_safety_under_arbitrary_adversaries(self, n):
        # Agreement/validity must hold even in runs without termination.
        inputs = inputs_for(n)
        for adversary in safety_adversaries(range(3)):
            system = System(AnonymousConsensus(n=n), inputs)
            trace = system.run(adversary, max_steps=20_000)
            AgreementChecker().check(trace)
            ValidityChecker(inputs).check(trace)

    def test_identical_inputs_decide_that_input(self):
        inputs = dict(zip(pids(3), ["same"] * 3))
        system = System(AnonymousConsensus(n=3), inputs)
        trace = system.run(StagedObstructionAdversary(prefix_steps=50), max_steps=200_000)
        assert set(trace.outputs.values()) == {"same"}

    @given(
        seed=st.integers(0, 10_000),
        naming_seed=st.integers(0, 100),
        prefix=st.integers(0, 150),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_agreement_validity_termination(self, seed, naming_seed, prefix):
        inputs = inputs_for(3, ["red", "green", "blue"])
        system = System(
            AnonymousConsensus(n=3), inputs, naming=RandomNaming(naming_seed)
        )
        adversary = StagedObstructionAdversary(prefix_steps=prefix, seed=seed)
        trace = system.run(adversary, max_steps=300_000)
        AgreementChecker().check(trace)
        ValidityChecker(inputs).check(trace)
        ObstructionFreeTerminationChecker().check(trace)

    def test_crash_tolerated_when_survivors_run_solo(self):
        inputs = inputs_for(3)
        crash_pid = pids(3)[1]
        system = System(AnonymousConsensus(n=3), inputs)
        adversary = CrashAdversary(
            StagedObstructionAdversary(prefix_steps=40, seed=2), {crash_pid: 25}
        )
        trace = system.run(adversary, max_steps=300_000)
        AgreementChecker().check(trace)
        survivors = [p for p in pids(3) if p != crash_pid]
        assert all(p in trace.halt_seq for p in survivors)


class TestExhaustive:
    def test_n2_fully_explored_agreement_and_validity(self):
        inputs = inputs_for(2, ["a", "b"])
        system = System(AnonymousConsensus(n=2), inputs, record_trace=False)
        invariant = conjoin(agreement_invariant, validity_invariant)
        result = explore(system, invariant, max_states=400_000, max_depth=100_000)
        # The full graph is infinite-schedule but finite-state; the search
        # reaches a fixpoint.
        assert result.ok, result.violation
        assert result.complete, result.summary()

    def test_n2_with_opposite_register_orders(self):
        from repro.memory.naming import ExplicitNaming

        inputs = inputs_for(2, ["a", "b"])
        naming = ExplicitNaming(
            {pids(2)[0]: (0, 1, 2), pids(2)[1]: (2, 1, 0)}
        )
        system = System(
            AnonymousConsensus(n=2), inputs, naming=naming, record_trace=False
        )
        result = explore(
            system,
            conjoin(agreement_invariant, validity_invariant),
            max_states=400_000,
            max_depth=100_000,
        )
        assert result.ok and result.complete


class TestChoiceStrategies:
    @pytest.mark.parametrize("choice", ["first", "last", "spread"])
    def test_all_index_choices_preserve_correctness(self, choice):
        inputs = inputs_for(3)
        system = System(AnonymousConsensus(n=3, choice=choice), inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=60, seed=1), max_steps=300_000
        )
        AgreementChecker().check(trace)
        ValidityChecker(inputs).check(trace)
        ObstructionFreeTerminationChecker().check(trace)


class TestEncodedRecords:
    """The §4.1 remark: records as single integers, end to end."""

    def test_registers_hold_plain_integers(self):
        inputs = {101: 1, 103: 2}
        system = System(AnonymousConsensus(n=2, encode_records=True), inputs)
        system.scheduler.step(101)
        assert all(isinstance(v, int) for v in system.memory.snapshot())

    def test_encoded_run_agrees_and_terminates(self):
        inputs = {101: 7, 103: 9, 107: 11}
        system = System(AnonymousConsensus(n=3, encode_records=True), inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=50, seed=4), max_steps=300_000
        )
        AgreementChecker().check(trace)
        ValidityChecker(inputs).check(trace)
        assert len(trace.decided()) == 3

    def test_encoded_and_plain_solo_runs_decide_identically(self):
        inputs = {101: 5, 103: 6}
        plain = System(AnonymousConsensus(n=2), inputs)
        encoded = System(AnonymousConsensus(n=2, encode_records=True), inputs)
        t1 = plain.run(SoloAdversary(101), max_steps=100_000)
        t2 = encoded.run(SoloAdversary(101), max_steps=100_000)
        assert t1.outputs[101] == t2.outputs[101]
        assert t1.steps_taken(101) == t2.steps_taken(101)
