"""Tests for the Figure 1 memory-anonymous mutual exclusion algorithm.

Covers Theorems 3.1-3.3: mutual exclusion and deadlock-freedom for odd
m >= 3 (sampled schedules + exhaustive model checking), the failure of
even m (via the Theorem 3.4 attack, tested in tests/lowerbounds), and the
structural properties of the figure's code (majority threshold, cleanup,
wait loop, exit section).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mutex import AnonymousMutex, AnonymousMutexProcess, MutexState
from repro.errors import ConfigurationError
from repro.memory.naming import ExplicitNaming, IdentityNaming, RandomNaming
from repro.runtime.adversary import (
    RandomAdversary,
    RoundRobinAdversary,
    SoloAdversary,
)
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System
from repro.spec.mutex_spec import (
    DeadlockFreedomChecker,
    ExitWaitFreeChecker,
    MutualExclusionChecker,
)

from tests.conftest import namings_for, pids, safety_adversaries


class TestValidation:
    def test_even_m_rejected(self):
        # Theorem 3.1: solutions exist iff m is odd.
        with pytest.raises(ConfigurationError):
            AnonymousMutex(m=4)

    def test_m_below_three_rejected(self):
        with pytest.raises(ConfigurationError):
            AnonymousMutex(m=1)

    def test_unsafe_flag_allows_even_m(self):
        assert AnonymousMutex(m=4, unsafe_allow_any_m=True).register_count() == 4

    def test_odd_m_accepted(self):
        for m in (3, 5, 7, 9, 11):
            assert AnonymousMutex(m=m).register_count() == m

    def test_threshold_is_ceil_m_over_2(self):
        assert AnonymousMutexProcess(101, m=3).threshold == 2
        assert AnonymousMutexProcess(101, m=5).threshold == 3
        assert AnonymousMutexProcess(101, m=7).threshold == 4


class TestSoloBehaviour:
    def test_solo_process_enters_cs_and_halts(self):
        system = System(AnonymousMutex(m=3, cs_visits=1), pids(2))
        trace = system.run(SoloAdversary(pids(2)[0]), max_steps=10_000)
        assert trace.outputs[pids(2)[0]] == 1
        assert trace.critical_section_entries(pids(2)[0]) == 1

    def test_solo_process_writes_then_reads_all_registers(self):
        # Lines 2-3: a solo process claims all m registers then verifies.
        system = System(AnonymousMutex(m=5, cs_visits=1), pids(2))
        pid = pids(2)[0]
        trace = system.run(SoloAdversary(pid), max_steps=10_000)
        assert trace.registers_written_by(pid) == (0, 1, 2, 3, 4)

    def test_exit_code_resets_all_registers(self):
        # Line 12: on exit all registers go back to 0.
        system = System(AnonymousMutex(m=3, cs_visits=1), pids(2))
        trace = system.run(SoloAdversary(pids(2)[0]), max_steps=10_000)
        assert trace.final_values == (0, 0, 0)

    def test_multiple_visits_loop(self):
        system = System(AnonymousMutex(m=3, cs_visits=4), pids(2))
        pid = pids(2)[0]
        trace = system.run(SoloAdversary(pid), max_steps=50_000)
        assert trace.outputs[pid] == 4
        assert trace.critical_section_entries(pid) == 4


class TestSafetyUnderSampledSchedules:
    @pytest.mark.parametrize("m", [3, 5, 7])
    def test_mutual_exclusion_all_namings_and_adversaries(self, m):
        checker = MutualExclusionChecker()
        for naming in namings_for(pids(2), m):
            for adversary in safety_adversaries(range(3)):
                system = System(
                    AnonymousMutex(m=m, cs_visits=2, cs_steps=3),
                    pids(2),
                    naming=naming,
                )
                trace = system.run(adversary, max_steps=30_000)
                checker.check(trace)

    @pytest.mark.parametrize("m", [3, 5])
    def test_deadlock_freedom_completed_runs(self, m):
        for seed in range(4):
            system = System(AnonymousMutex(m=m, cs_visits=2), pids(2))
            trace = system.run(RandomAdversary(seed), max_steps=100_000)
            assert trace.stop_reason == "all-halted"
            DeadlockFreedomChecker().check(trace)

    def test_exit_section_is_wait_free(self, two_pids):
        for seed in range(3):
            system = System(AnonymousMutex(m=5, cs_visits=2), two_pids)
            trace = system.run(RandomAdversary(seed), max_steps=100_000)
            ExitWaitFreeChecker(max_exit_steps=5).check(trace)

    @given(seed=st.integers(0, 10_000), m=st.sampled_from([3, 5, 7]))
    @settings(max_examples=25, deadline=None)
    def test_property_random_schedules_never_violate_me(self, seed, m):
        system = System(
            AnonymousMutex(m=m, cs_visits=1, cs_steps=2),
            pids(2),
            naming=RandomNaming(seed % 7),
        )
        trace = system.run(RandomAdversary(seed), max_steps=30_000)
        MutualExclusionChecker().check(trace)


class TestExhaustive:
    """Bounded-exhaustive verification of Theorem 3.2 on small instances."""

    def test_m3_identity_naming_fully_explored(self):
        system = System(
            AnonymousMutex(m=3, cs_visits=1), pids(2), record_trace=False
        )
        result = explore(system, mutual_exclusion_invariant, max_states=500_000)
        assert result.complete, result.summary()
        assert result.ok, result.violation
        assert result.stuck_states == 0  # nobody ever gets stuck

    def test_m3_rotated_ring_naming_fully_explored(self):
        from repro.memory.naming import RingNaming

        naming = RingNaming({pids(2)[0]: 0, pids(2)[1]: 1})
        system = System(
            AnonymousMutex(m=3, cs_visits=1),
            pids(2),
            naming=naming,
            record_trace=False,
        )
        result = explore(system, mutual_exclusion_invariant, max_states=500_000)
        assert result.complete and result.ok and result.stuck_states == 0

    def test_m3_adversarial_opposite_orders(self):
        naming = ExplicitNaming(
            {pids(2)[0]: (0, 1, 2), pids(2)[1]: (2, 1, 0)}
        )
        system = System(
            AnonymousMutex(m=3, cs_visits=1),
            pids(2),
            naming=naming,
            record_trace=False,
        )
        result = explore(system, mutual_exclusion_invariant, max_states=500_000)
        assert result.complete and result.ok and result.stuck_states == 0

    def test_m5_identity_naming_fully_explored(self):
        system = System(
            AnonymousMutex(m=5, cs_visits=1), pids(2), record_trace=False
        )
        result = explore(system, mutual_exclusion_invariant, max_states=2_000_000)
        assert result.complete, result.summary()
        assert result.ok, result.violation


class TestStateMachineStructure:
    """White-box checks that the automaton follows Figure 1 line by line."""

    def test_loser_cleans_up_only_its_own_marks(self):
        # Line 5: "if p.i[j] = i then p.i[j] = 0".
        automaton = AnonymousMutexProcess(101, m=3)
        state = MutexState(pc="cleanup_read", j=0)
        from repro.runtime.ops import ReadOp, WriteOp

        # Reading the other process's id: move on without writing.
        next_state = automaton.apply(state, ReadOp(0), 103)
        assert next_state.pc == "cleanup_read"
        assert next_state.j == 1
        # Reading own id: write 0 there.
        write_state = automaton.apply(state, ReadOp(0), 101)
        assert write_state.pc == "cleanup_write"
        assert automaton.next_op(write_state) == WriteOp(0, 0)

    def test_scan_skips_occupied_registers(self):
        # Line 2: only 0-valued registers are claimed.
        automaton = AnonymousMutexProcess(101, m=3)
        state = MutexState(pc="scan_read", j=1)
        from repro.runtime.ops import ReadOp

        next_state = automaton.apply(state, ReadOp(1), 103)
        assert next_state.pc == "scan_read"
        assert next_state.j == 2

    def test_collect_with_all_mine_enters_cs(self):
        automaton = AnonymousMutexProcess(101, m=3)
        state = MutexState(pc="collect", j=2, myview=(101, 101))
        from repro.runtime.ops import ReadOp

        next_state = automaton.apply(state, ReadOp(2), 101)
        assert next_state.pc == "enter_cs"

    def test_collect_below_threshold_loses(self):
        automaton = AnonymousMutexProcess(101, m=3)
        state = MutexState(pc="collect", j=2, myview=(103, 103))
        from repro.runtime.ops import ReadOp

        next_state = automaton.apply(state, ReadOp(2), 101)
        assert next_state.pc == "cleanup_read"

    def test_collect_at_threshold_but_not_all_retries(self):
        # >= ceil(m/2) but < m: "it starts all over again" (line 1).
        automaton = AnonymousMutexProcess(101, m=3)
        state = MutexState(pc="collect", j=2, myview=(101, 101))
        from repro.runtime.ops import ReadOp

        next_state = automaton.apply(state, ReadOp(2), 103)
        assert next_state.pc == "scan_read"
        assert next_state.j == 0

    def test_wait_loop_until_all_zero(self):
        # Lines 6-8: keep re-reading until every register is 0.
        automaton = AnonymousMutexProcess(101, m=3)
        from repro.runtime.ops import ReadOp

        state = MutexState(pc="wait", j=2, myview=(0, 0))
        assert automaton.apply(state, ReadOp(2), 0).pc == "scan_read"
        dirty = MutexState(pc="wait", j=2, myview=(0, 103))
        retry = automaton.apply(dirty, ReadOp(2), 0)
        assert retry.pc == "wait" and retry.j == 0

    def test_phase_classification(self):
        automaton = AnonymousMutexProcess(101, m=3)
        assert automaton.phase(MutexState(pc="scan_read")) == "entry"
        assert automaton.phase(MutexState(pc="wait")) == "entry"
        assert automaton.phase(MutexState(pc="crit")) == "critical"
        assert automaton.phase(MutexState(pc="exit_crit")) == "critical"
        assert automaton.phase(MutexState(pc="reset")) == "exit"
        assert automaton.phase(MutexState(pc="done")) == "remainder"

    def test_per_process_cs_visit_override_via_input(self):
        algorithm = AnonymousMutex(m=3, cs_visits=1)
        automaton = algorithm.automaton_for(101, input=5)
        assert automaton.cs_visits == 5


class TestContention:
    def test_contended_runs_serialize_cs_entries(self, two_pids):
        # Under heavy contention, entries alternate or repeat but never
        # overlap; total entries equals the sum of visits.
        system = System(AnonymousMutex(m=3, cs_visits=3, cs_steps=4), two_pids)
        trace = system.run(RandomAdversary(11), max_steps=200_000)
        assert trace.stop_reason == "all-halted"
        assert trace.critical_section_entries() == 6
        MutualExclusionChecker().check(trace)

    def test_round_robin_makes_progress_with_odd_m(self, two_pids):
        # Odd m guarantees the symmetric schedule breaks: round robin is
        # lockstep, and exactly one process captures a majority.
        system = System(AnonymousMutex(m=3, cs_visits=1), two_pids)
        trace = system.run(RoundRobinAdversary(), max_steps=100_000)
        assert trace.stop_reason == "all-halted"
        assert trace.critical_section_entries() == 2
