"""Unit tests for the telemetry sinks, plus the differential guarantee
that attaching a live sink never changes an exploration's result."""

import json
import pickle

import pytest

from repro.core.mutex import AnonymousMutex
from repro.obs import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.runtime.adversary import RandomAdversary
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System

from tests.conftest import pids


def mutex_system():
    return System(AnonymousMutex(m=3, cs_visits=1), pids(2), record_trace=False)


class TestTelemetry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("x")
        tel.count("x", 4)
        tel.count("y", -2)
        assert tel.counters == {"x": 5, "y": -2}

    def test_gauges_keep_the_latest_value(self):
        tel = Telemetry()
        tel.gauge("frontier", 10)
        tel.gauge("frontier", 3)
        assert tel.gauges == {"frontier": 3}

    def test_phase_timer_accumulates_across_entries(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.phase("walk"):
                pass
        phases = tel.phases
        assert phases["walk"]["entries"] == 3
        assert phases["walk"]["seconds"] >= 0.0

    def test_event_log_is_bounded_oldest_dropped_first(self):
        tel = Telemetry(max_events=2, clock=lambda: 0.0)
        for k in range(5):
            tel.event("tick", k=k)
        kept = [fields["k"] for _, _, fields in tel.events()]
        assert kept == [3, 4]
        assert tel.events_dropped == 3

    def test_injected_clock_stamps_events(self):
        ticks = iter([1.5, 2.5])
        tel = Telemetry(clock=lambda: next(ticks))
        tel.event("a")
        tel.event("b")
        assert [ts for ts, _, _ in tel.events()] == [1.5, 2.5]

    def test_snapshot_is_json_serialisable(self):
        tel = Telemetry(clock=lambda: 0.25)
        tel.count("c")
        tel.gauge("g", 2.0)
        tel.event("e", detail="fine")
        with tel.phase("p"):
            pass
        snapshot = tel.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["counters"] == {"c": 1}
        assert round_tripped["gauges"] == {"g": 2.0}
        assert round_tripped["events"] == [
            {"t": 0.25, "name": "e", "detail": "fine"}
        ]
        assert round_tripped["phases"]["p"]["entries"] == 1
        assert round_tripped["events_dropped"] == 0


class TestNullTelemetry:
    def test_everything_is_a_noop(self):
        tel = NullTelemetry()
        assert tel.enabled is False
        tel.count("x")
        tel.gauge("g", 1)
        tel.event("e", k=1)
        with tel.phase("p"):
            pass
        assert tel.snapshot() == {
            "counters": {},
            "gauges": {},
            "phases": {},
            "events": [],
            "events_dropped": 0,
        }

    def test_snapshot_shape_matches_live_sink(self):
        assert set(NULL_TELEMETRY.snapshot()) == set(Telemetry().snapshot())

    def test_shared_instance_is_picklable(self):
        clone = pickle.loads(pickle.dumps(NULL_TELEMETRY))
        assert clone.enabled is False


class TestExplorationIsTelemetryInvariant:
    """Attaching a live sink must be an observational no-op."""

    @pytest.mark.parametrize("reduction", ["none", "symmetry"])
    def test_results_identical_up_to_wall_time(self, reduction):
        silent = explore(
            mutex_system(), mutual_exclusion_invariant, reduction=reduction
        )
        tel = Telemetry()
        observed = explore(
            mutex_system(),
            mutual_exclusion_invariant,
            reduction=reduction,
            telemetry=tel,
        )
        for field_name in (
            "complete", "states_explored", "events_executed",
            "max_depth_reached", "violation", "violation_schedule",
            "stuck_states", "truncated_by", "orbits_collapsed",
            "group_size", "peak_visited", "backend", "workers",
        ):
            assert getattr(observed, field_name) == getattr(silent, field_name), (
                field_name
            )

    def test_explore_records_phases_gauges_and_events(self):
        tel = Telemetry()
        result = explore(
            mutex_system(),
            mutual_exclusion_invariant,
            reduction="symmetry",
            telemetry=tel,
        )
        phases = tel.phases
        assert "explore.build_canonicalizer" in phases
        assert "explore.walk" in phases
        gauges = tel.gauges
        assert gauges["explore.states"] == result.states_explored
        assert gauges["explore.peak_visited"] == result.peak_visited
        assert gauges["explore.group_size"] == result.group_size
        names = [name for _, name, _ in tel.events()]
        assert names[0] == "explore.start"
        assert names[-1] == "explore.done"
        done = list(tel.events())[-1][2]
        assert done["verdict"] == "exhaustive-ok"
        assert done["states"] == result.states_explored


class TestSchedulerCounters:
    def test_step_counters_match_the_trace(self):
        tel = Telemetry()
        system = System(
            AnonymousMutex(m=3, cs_visits=2), pids(2), telemetry=tel
        )
        trace = system.run(RandomAdversary(1), max_steps=50_000)
        counters = tel.counters
        assert counters["scheduler.steps"] == len(trace)
        # Some steps are neither (critical-section markers, no-ops).
        assert counters["scheduler.reads"] > 0
        assert counters["scheduler.writes"] > 0
        assert (
            counters["scheduler.reads"] + counters["scheduler.writes"]
            <= counters["scheduler.steps"]
        )
        # Two processes interleaving over three registers must contend.
        assert counters["scheduler.contended_accesses"] > 0
        assert counters["scheduler.halts"] == 2

    def test_disabled_sink_keeps_scheduler_silent(self):
        system = System(AnonymousMutex(m=3, cs_visits=1), pids(2))
        system.run(RandomAdversary(1), max_steps=50_000)
        assert system.scheduler.telemetry is NULL_TELEMETRY
