"""Schema round-trip and validation tests for run manifests."""

import json

import pytest

from repro.errors import ManifestValidationError
from repro.obs import (
    MANIFEST_SCHEMA,
    RunManifest,
    Telemetry,
    host_fingerprint,
    load_manifests,
    validate_manifest,
    write_manifests_ndjson,
)


def make_manifest(**overrides):
    tel = Telemetry(clock=lambda: 0.0)
    tel.count("scheduler.steps", 42)
    fields = dict(
        kind="exploration",
        algorithm="mutex m=3 (n=2)",
        parameters={"max_states": 500_000},
        naming="identity",
        adversary="exhaustive (all schedules)",
        backend="serial",
        workers=1,
        outcome={"verdict": "exhaustive-ok", "states": 771},
        telemetry=tel.snapshot(),
    )
    fields.update(overrides)
    return RunManifest.create(**fields)


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        manifest = make_manifest()
        clone = RunManifest.from_dict(manifest.to_dict())
        assert clone == manifest

    def test_create_fills_ambient_fields(self):
        manifest = make_manifest()
        assert manifest.schema == MANIFEST_SCHEMA
        assert set(manifest.host) == {"platform", "python", "cpus"}
        assert manifest.created_at.endswith("+00:00")
        # This test runs inside the repository checkout.
        assert manifest.git_rev is None or len(manifest.git_rev) == 40

    def test_write_and_load_single_file(self, tmp_path):
        manifest = make_manifest()
        path = manifest.write(tmp_path / "run.json")
        loaded = load_manifests(path)
        assert loaded == [manifest]

    def test_ndjson_round_trip_preserves_order(self, tmp_path):
        manifests = [make_manifest(kind=f"kind-{k}") for k in range(3)]
        path = write_manifests_ndjson(manifests, tmp_path / "runs.ndjson")
        assert load_manifests(path) == manifests

    def test_directory_load_collects_both_formats(self, tmp_path):
        make_manifest(algorithm="a").write(tmp_path / "a.json")
        write_manifests_ndjson(
            [make_manifest(algorithm="b"), make_manifest(algorithm="c")],
            tmp_path / "bc.ndjson",
        )
        loaded = load_manifests(tmp_path)
        assert [m.algorithm for m in loaded] == ["a", "b", "c"]

    def test_default_telemetry_block_is_the_null_snapshot(self):
        manifest = RunManifest.create(kind="x", algorithm="y")
        assert manifest.telemetry["counters"] == {}
        assert validate_manifest(manifest.to_dict()) == []

    def test_verdict_accessor(self):
        assert make_manifest().verdict() == "exhaustive-ok"
        assert make_manifest(outcome={}).verdict() == "?"


class TestValidation:
    def test_valid_document_has_no_problems(self):
        assert validate_manifest(make_manifest().to_dict()) == []

    def test_non_object_is_rejected(self):
        assert validate_manifest([1, 2]) != []

    def test_missing_required_field(self):
        document = make_manifest().to_dict()
        del document["outcome"]
        problems = validate_manifest(document)
        assert any("outcome" in p and "missing" in p for p in problems)

    def test_wrong_type_is_named(self):
        document = make_manifest().to_dict()
        document["workers"] = "four"
        problems = validate_manifest(document)
        assert any("workers" in p and "int" in p for p in problems)

    def test_bool_does_not_pass_as_int(self):
        document = make_manifest().to_dict()
        document["workers"] = True
        assert any("bool" in p for p in validate_manifest(document))

    def test_unknown_schema_version_is_rejected(self):
        document = make_manifest().to_dict()
        document["schema"] = "repro.run_manifest/v99"
        assert any("unsupported schema" in p for p in validate_manifest(document))

    def test_unknown_fields_are_rejected(self):
        document = make_manifest().to_dict()
        document["surprise"] = 1
        assert any("unknown fields" in p for p in validate_manifest(document))

    def test_structural_telemetry_check(self):
        document = make_manifest().to_dict()
        del document["telemetry"]["phases"]
        document["telemetry"]["events"] = {}
        problems = validate_manifest(document)
        assert any("telemetry block missing 'phases'" in p for p in problems)
        assert any("telemetry.events must be list" in p for p in problems)

    def test_all_problems_reported_at_once(self):
        document = make_manifest().to_dict()
        del document["kind"]
        document["workers"] = "four"
        document["extra"] = 0
        assert len(validate_manifest(document)) == 3

    def test_from_dict_raises_listing_problems(self):
        document = make_manifest().to_dict()
        del document["kind"]
        with pytest.raises(ManifestValidationError, match="kind"):
            RunManifest.from_dict(document)

    def test_to_dict_validates_the_constructed_manifest(self):
        manifest = make_manifest()
        manifest.workers = "four"
        with pytest.raises(ManifestValidationError, match="workers"):
            manifest.to_dict()


class TestLoadErrors:
    def test_invalid_file_is_named_in_the_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": MANIFEST_SCHEMA}))
        with pytest.raises(ManifestValidationError, match="bad.json"):
            load_manifests(bad)

    def test_ndjson_errors_name_the_line(self, tmp_path):
        good = make_manifest()
        bad = tmp_path / "runs.ndjson"
        bad.write_text(
            json.dumps(good.to_dict()) + "\n" + json.dumps({"kind": "?"}) + "\n"
        )
        with pytest.raises(ManifestValidationError, match="line 2"):
            load_manifests(bad)

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(ManifestValidationError, match="no .json"):
            load_manifests(tmp_path)

    def test_non_manifest_neighbour_json_is_rejected_loudly(self, tmp_path):
        (tmp_path / "BENCH_explore.json").write_text(json.dumps({"schema": "x"}))
        with pytest.raises(ManifestValidationError, match="BENCH_explore.json"):
            load_manifests(tmp_path)


class TestHostFingerprint:
    def test_fingerprint_fields(self):
        fingerprint = host_fingerprint()
        assert isinstance(fingerprint["platform"], str)
        assert isinstance(fingerprint["python"], str)
        assert fingerprint["cpus"] is None or fingerprint["cpus"] >= 1


class TestTruncatedTail:
    """A worker killed mid-append leaves a torn final NDJSON line."""

    def torn_stream(self, tmp_path, cut=25):
        manifests = [make_manifest(naming=f"n{k}") for k in range(3)]
        path = write_manifests_ndjson(manifests, tmp_path / "runs.ndjson")
        text = path.read_text()
        path.write_text(text[:-cut])
        return manifests, path

    def test_default_load_still_raises(self, tmp_path):
        _, path = self.torn_stream(tmp_path)
        with pytest.raises(json.JSONDecodeError):
            load_manifests(path)

    def test_tolerant_load_drops_only_the_final_line(self, tmp_path):
        from repro.obs import TruncatedManifestWarning

        manifests, path = self.torn_stream(tmp_path)
        with pytest.warns(TruncatedManifestWarning, match="truncated final line"):
            loaded = load_manifests(path, tolerate_truncated_tail=True)
        assert loaded == manifests[:-1]

    def test_tolerant_load_of_intact_stream_warns_nothing(self, tmp_path):
        import warnings as _warnings

        manifests = [make_manifest()]
        path = write_manifests_ndjson(manifests, tmp_path / "runs.ndjson")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert load_manifests(path, tolerate_truncated_tail=True) == manifests

    def test_torn_middle_line_still_raises(self, tmp_path):
        manifests = [make_manifest(naming=f"n{k}") for k in range(3)]
        path = write_manifests_ndjson(manifests, tmp_path / "runs.ndjson")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:40]  # corruption, not a crash tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            load_manifests(path, tolerate_truncated_tail=True)
