"""Tests for the manifest report renderer and its CLI entry."""

from repro.obs import RunManifest, Telemetry, render_report, write_manifests_ndjson
from repro.obs.report import report_main


def make_manifest(**overrides):
    tel = Telemetry(clock=lambda: 0.0)
    with tel.phase("explore.walk"):
        pass
    fields = dict(
        kind="exploration",
        algorithm="mutex m=3 (n=2)",
        parameters={},
        naming="identity",
        backend="serial",
        workers=1,
        outcome={"verdict": "exhaustive-ok", "states": 771, "events": 1492,
                 "wall_seconds": 0.02},
        telemetry=tel.snapshot(),
    )
    fields.update(overrides)
    return RunManifest.create(**fields)


class TestRenderReport:
    def test_one_row_per_manifest_leading_with_verdict(self):
        table = render_report(
            [make_manifest(), make_manifest(outcome={"verdict": "violation"})]
        )
        assert "exhaustive-ok" in table
        assert "violation" in table
        assert "mutex m=3 (n=2)" in table
        assert "serial x1" in table

    def test_dominant_phase_column(self):
        table = render_report([make_manifest()])
        assert "explore.walk 100%" in table

    def test_missing_outcome_numbers_render_blank(self):
        table = render_report(
            [make_manifest(outcome={"verdict": "ok"}, telemetry=None)]
        )
        assert "ok" in table


class TestReportMain:
    def test_directory_of_manifests_exits_zero(self, tmp_path, capsys):
        write_manifests_ndjson(
            [make_manifest(), make_manifest()], tmp_path / "runs.ndjson"
        )
        assert report_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 run(s), all schema-valid" in out
        assert "exhaustive-ok" in out

    def test_no_arguments_is_usage_error(self, capsys):
        assert report_main([]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        assert report_main(["-h"]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_invalid_manifest_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"kind\": \"?\"}")
        assert report_main([str(bad)]) == 2
        assert "invalid manifest" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
