"""Shared fixtures and helpers for the test suite.

Process identifiers in tests are >= 100 to avoid colliding with small
loop counters inside local states (see
:func:`repro.lowerbounds.symmetry.relabel_value`).
"""

from __future__ import annotations

import pytest

from repro.memory.naming import IdentityNaming, RandomNaming, RingNaming
from repro.runtime.adversary import (
    AlternatingBurstAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    StagedObstructionAdversary,
)

#: Distinct, non-contiguous pids — the model does not assume {1..n}.
PIDS = (101, 103, 107, 109, 113, 127, 131, 137)


def pids(n: int):
    """The first ``n`` canonical test pids."""
    return PIDS[:n]


def safety_adversaries(seeds=range(4)):
    """Schedules for safety checking (no liveness guarantee implied)."""
    battery = [RoundRobinAdversary()]
    for seed in seeds:
        battery.append(RandomAdversary(seed))
        battery.append(AlternatingBurstAdversary(seed=seed, max_burst=6))
    return battery


def progress_adversaries(seeds=range(4), prefix_steps=60):
    """Schedules that eventually give every process a solo run."""
    return [
        StagedObstructionAdversary(prefix_steps=prefix_steps, seed=seed)
        for seed in seeds
    ]


def namings_for(pids_, m, seeds=(0, 1, 2)):
    """Identity, random and ring namings for a register count."""
    result = [IdentityNaming()]
    result.extend(RandomNaming(seed) for seed in seeds)
    if m % len(pids_) == 0:
        result.append(RingNaming.equispaced(tuple(pids_), m))
    else:
        result.append(RingNaming({pid: k for k, pid in enumerate(pids_)}))
    return result


@pytest.fixture
def two_pids():
    return pids(2)


@pytest.fixture
def three_pids():
    return pids(3)


@pytest.fixture
def four_pids():
    return pids(4)
