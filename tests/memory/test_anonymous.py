"""Unit tests for anonymous memory and per-process views."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.anonymous import AnonymousMemory
from repro.memory.naming import ExplicitNaming, IdentityNaming, RandomNaming


class TestAnonymousMemoryConstruction:
    def test_defaults_to_identity_naming(self):
        memory = AnonymousMemory(3, (101, 103))
        assert memory.view(101).permutation == (0, 1, 2)

    def test_rejects_duplicate_pids(self):
        with pytest.raises(ConfigurationError):
            AnonymousMemory(3, (101, 101))

    def test_rejects_non_positive_pid(self):
        with pytest.raises(ConfigurationError):
            AnonymousMemory(3, (0, 101))

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            AnonymousMemory(0, (101,))

    def test_unknown_pid_view_rejected(self):
        memory = AnonymousMemory(3, (101,))
        with pytest.raises(ConfigurationError):
            memory.view(999)

    def test_size_property(self):
        assert AnonymousMemory(7, (101,)).size == 7


class TestMemoryView:
    def test_identity_view_maps_straight_through(self):
        memory = AnonymousMemory(3, (101,))
        view = memory.view(101)
        view.write(1, "x")
        assert memory.snapshot() == (0, "x", 0)
        assert view.read(1) == "x"

    def test_permuted_view_translates_indices(self):
        naming = ExplicitNaming({101: (2, 0, 1)})
        memory = AnonymousMemory(3, (101,), naming=naming)
        view = memory.view(101)
        view.write(0, "first")  # process's register 0 is physical 2
        assert memory.snapshot() == (0, 0, "first")

    def test_two_processes_same_physical_register_different_names(self):
        # The §1 example: a single register may be "the fifth" for one
        # process and "the eighth" for another.
        naming = ExplicitNaming({101: (0, 1, 2), 103: (2, 1, 0)})
        memory = AnonymousMemory(3, (101, 103), naming=naming)
        memory.view(101).write(0, "shared")
        assert memory.view(103).read(2) == "shared"

    def test_view_index_out_of_range_raises_protocol_error(self):
        memory = AnonymousMemory(3, (101,))
        with pytest.raises(ProtocolError):
            memory.view(101).read(3)

    def test_negative_view_index_rejected(self):
        memory = AnonymousMemory(3, (101,))
        with pytest.raises(ProtocolError):
            memory.view(101).write(-1, 5)

    def test_physical_and_view_translation_are_inverse(self):
        naming = RandomNaming(seed=7)
        memory = AnonymousMemory(8, (101,), naming=naming)
        view = memory.view(101)
        for j in range(8):
            assert view.view_index_of(view.physical_index_of(j)) == j

    def test_view_index_of_unknown_physical_raises(self):
        memory = AnonymousMemory(3, (101,))
        with pytest.raises(ProtocolError):
            memory.view(101).view_index_of(17)

    def test_view_size_matches_memory(self):
        memory = AnonymousMemory(5, (101,))
        assert memory.view(101).size == 5


class TestSnapshotRestoreReset:
    def test_restore_sets_physical_values(self):
        memory = AnonymousMemory(3, (101,))
        memory.restore(["a", "b", "c"])
        assert memory.snapshot() == ("a", "b", "c")

    def test_reset_returns_to_initial(self):
        memory = AnonymousMemory(3, (101,), initial="empty")
        memory.view(101).write(0, "dirty")
        memory.reset()
        assert memory.snapshot() == ("empty", "empty", "empty")

    def test_initial_value_applied_to_all_registers(self):
        memory = AnonymousMemory(2, (101,), initial=42)
        assert memory.snapshot() == (42, 42)


class TestWritesVisibleAcrossViews:
    def test_mwmr_semantics_all_processes_see_last_write(self):
        naming = RandomNaming(seed=1)
        pids = (101, 103, 107)
        memory = AnonymousMemory(5, pids, naming=naming)
        writer = memory.view(101)
        writer.write(2, "payload")
        physical = writer.physical_index_of(2)
        for pid in pids:
            view = memory.view(pid)
            assert view.read(view.view_index_of(physical)) == "payload"
