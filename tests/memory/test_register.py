"""Unit tests for atomic registers and register arrays."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.register import AtomicRegister, LockedRegister, RegisterArray


class TestAtomicRegister:
    def test_initial_value_is_returned_by_read(self):
        reg = AtomicRegister(initial=7)
        assert reg.read() == 7

    def test_default_initial_value_is_zero(self):
        assert AtomicRegister().read() == 0

    def test_write_then_read_round_trips(self):
        reg = AtomicRegister()
        reg.write("value")
        assert reg.read() == "value"

    def test_last_write_wins(self):
        reg = AtomicRegister()
        reg.write(1)
        reg.write(2)
        reg.write(3)
        assert reg.read() == 3

    def test_read_and_write_counts_are_tracked(self):
        reg = AtomicRegister()
        reg.read()
        reg.read()
        reg.write(1)
        assert reg.read_count == 2
        assert reg.write_count == 1

    def test_peek_does_not_count_as_access(self):
        reg = AtomicRegister(initial=5)
        assert reg.peek() == 5
        assert reg.read_count == 0

    def test_poke_does_not_count_as_access(self):
        reg = AtomicRegister()
        reg.poke(9)
        assert reg.write_count == 0
        assert reg.peek() == 9

    def test_reset_restores_initial_value_and_stats(self):
        reg = AtomicRegister(initial=4)
        reg.write(10)
        reg.read()
        reg.reset()
        assert reg.peek() == 4
        assert reg.read_count == 0
        assert reg.write_count == 0

    def test_initial_property_is_preserved_after_writes(self):
        reg = AtomicRegister(initial="init")
        reg.write("other")
        assert reg.initial == "init"


class TestLockedRegister:
    def test_behaves_like_plain_register(self):
        reg = LockedRegister(initial=1)
        assert reg.read() == 1
        reg.write(2)
        assert reg.read() == 2
        assert reg.write_count == 1

    def test_concurrent_increments_are_not_lost_per_operation(self):
        # Each write is atomic; interleaved writers cannot corrupt the
        # cell into a value nobody wrote.
        import threading

        reg = LockedRegister(initial=0)
        values = list(range(1, 201))

        def writer(vals):
            for v in vals:
                reg.write(v)

        threads = [
            threading.Thread(target=writer, args=(values[k::4],))
            for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.read() in values
        assert reg.write_count == len(values)


class TestRegisterArray:
    def test_size_validation_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            RegisterArray(0)

    def test_size_validation_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            RegisterArray(-3)

    def test_len_matches_size(self):
        assert len(RegisterArray(5)) == 5

    def test_all_registers_start_at_initial(self):
        array = RegisterArray(4, initial=9)
        assert array.snapshot() == (9, 9, 9, 9)

    def test_read_write_by_physical_index(self):
        array = RegisterArray(3)
        array.write(1, "middle")
        assert array.read(1) == "middle"
        assert array.read(0) == 0

    def test_snapshot_reflects_current_values(self):
        array = RegisterArray(3)
        array.write(0, "a")
        array.write(2, "c")
        assert array.snapshot() == ("a", 0, "c")

    def test_snapshot_does_not_count_accesses(self):
        array = RegisterArray(3)
        array.snapshot()
        assert array.total_reads == 0

    def test_restore_overwrites_all_values(self):
        array = RegisterArray(3)
        array.restore(["x", "y", "z"])
        assert array.snapshot() == ("x", "y", "z")
        assert array.total_writes == 0

    def test_restore_wrong_length_rejected(self):
        array = RegisterArray(3)
        with pytest.raises(ConfigurationError):
            array.restore([1, 2])

    def test_reset_restores_initial_everywhere(self):
        array = RegisterArray(2, initial="0")
        array.write(0, "dirty")
        array.reset()
        assert array.snapshot() == ("0", "0")

    def test_total_access_counters_aggregate(self):
        array = RegisterArray(2)
        array.read(0)
        array.read(1)
        array.write(0, 1)
        assert array.total_reads == 2
        assert array.total_writes == 1

    def test_locked_flag_builds_locked_registers(self):
        array = RegisterArray(2, locked=True)
        assert all(isinstance(r, LockedRegister) for r in array)

    def test_iteration_yields_registers_in_order(self):
        array = RegisterArray(3)
        names = [reg.name for reg in array]
        assert names == ["R0", "R1", "R2"]
