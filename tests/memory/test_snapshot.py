"""Unit tests for the double-collect snapshot object (baseline substrate)."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.memory.snapshot import SnapshotObject


class TestSnapshotBasics:
    def test_rejects_zero_segments(self):
        with pytest.raises(ConfigurationError):
            SnapshotObject(0)

    def test_initial_scan_returns_initial_values(self):
        snap = SnapshotObject(3, initial="empty")
        assert snap.scan() == ("empty", "empty", "empty")

    def test_update_then_scan(self):
        snap = SnapshotObject(3)
        snap.update(1, "mid")
        assert snap.scan() == (0, "mid", 0)

    def test_multiple_updates_last_wins(self):
        snap = SnapshotObject(2)
        snap.update(0, "a")
        snap.update(0, "b")
        assert snap.scan()[0] == "b"

    def test_len(self):
        assert len(SnapshotObject(4)) == 4

    def test_peek_matches_scan_when_quiescent(self):
        snap = SnapshotObject(3)
        snap.update(2, 7)
        assert snap.peek() == snap.scan()

    def test_sequence_numbers_distinguish_same_value_rewrites(self):
        # ABA protection: rewriting the same value still bumps the
        # sequence number, so double collect cannot be fooled.
        snap = SnapshotObject(1)
        snap.update(0, "x")
        seq_before = snap._segments[0].peek()[0]
        snap.update(0, "x")
        assert snap._segments[0].peek()[0] == seq_before + 1


class TestSnapshotUnderThreads:
    def test_scan_never_returns_torn_multi_segment_update(self):
        # A writer always updates segment 0 then segment 1 with the same
        # tag; a scanner must never observe seg0's tag ahead of seg1's by
        # more than one in-flight update... stronger: every scan is a
        # vector that existed at some instant.  We verify the weaker,
        # checkable form: scanned tags are monotone pairs (a, b) with
        # a >= b (writer order), never a < b.
        snap = SnapshotObject(2, locked=True)
        torn = []

        def writer():
            # Bounded writer: the scanner's double collect is guaranteed
            # to stabilise once the writer finishes, so the test cannot
            # livelock even under adversarial thread scheduling.
            for tag in range(1, 2_000):
                snap.update(0, tag)
                snap.update(1, tag)

        def scanner():
            for _ in range(200):
                a, b = snap.scan()
                if a != 0 and b != 0 and a < b:
                    torn.append((a, b))

        w = threading.Thread(target=writer)
        s = threading.Thread(target=scanner)
        w.start()
        s.start()
        s.join()
        w.join()
        assert torn == []
