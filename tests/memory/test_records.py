"""Unit and property tests for register records and their single-integer
encodings (the paper's §4.1 remark)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.records import (
    ConsensusRecord,
    RenamingRecord,
    _pair,
    _unpair,
    decode_consensus_record,
    decode_renaming_record,
    encode_consensus_record,
    encode_renaming_record,
)


class TestConsensusRecord:
    def test_default_is_empty(self):
        assert ConsensusRecord().is_empty()

    def test_non_default_is_not_empty(self):
        assert not ConsensusRecord(101, 5).is_empty()

    def test_equality_is_field_wise(self):
        assert ConsensusRecord(101, 5) == ConsensusRecord(101, 5)
        assert ConsensusRecord(101, 5) != ConsensusRecord(101, 6)

    def test_is_hashable(self):
        assert len({ConsensusRecord(1, 2), ConsensusRecord(1, 2)}) == 1

    def test_str_rendering(self):
        assert str(ConsensusRecord(101, 5)) == "(101,5)"


class TestRenamingRecord:
    def test_default_is_empty(self):
        assert RenamingRecord().is_empty()

    def test_record_with_history_not_empty(self):
        record = RenamingRecord(history=frozenset({(101, 1)}))
        assert not record.is_empty()

    def test_history_defaults_to_empty_frozenset(self):
        assert RenamingRecord().history == frozenset()

    def test_is_hashable_with_history(self):
        a = RenamingRecord(101, 101, 2, frozenset({(103, 1)}))
        b = RenamingRecord(101, 101, 2, frozenset({(103, 1)}))
        assert len({a, b}) == 1

    def test_str_rendering_sorts_history(self):
        record = RenamingRecord(1, 2, 3, frozenset({(9, 1), (5, 2)}))
        assert str(record) == "(1,2,3,{(5,2),(9,1)})"


class TestPairing:
    @given(a=st.integers(0, 10**6), b=st.integers(0, 10**6))
    @settings(max_examples=120)
    def test_pair_unpair_round_trip(self, a, b):
        assert _unpair(_pair(a, b)) == (a, b)

    @given(z=st.integers(0, 10**12))
    @settings(max_examples=120)
    def test_unpair_pair_round_trip(self, z):
        a, b = _unpair(z)
        assert _pair(a, b) == z

    def test_pair_is_injective_on_a_grid(self):
        seen = {}
        for a in range(40):
            for b in range(40):
                code = _pair(a, b)
                assert code not in seen, (a, b, seen[code])
                seen[code] = (a, b)

    def test_pair_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            _pair(-1, 0)


class TestConsensusRecordEncoding:
    def test_empty_record_encodes_to_zero(self):
        # The paper's "initially 0" register state survives encoding.
        assert encode_consensus_record(ConsensusRecord()) == 0

    def test_zero_decodes_to_empty_record(self):
        assert decode_consensus_record(0) == ConsensusRecord()

    def test_round_trip_simple(self):
        record = ConsensusRecord(101, 7)
        assert decode_consensus_record(encode_consensus_record(record)) == record

    def test_nonempty_records_encode_nonzero(self):
        assert encode_consensus_record(ConsensusRecord(1, 0)) != 0

    def test_decode_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            decode_consensus_record(-1)

    @given(pid=st.integers(0, 10**5), val=st.integers(0, 10**5))
    @settings(max_examples=120)
    def test_round_trip_property(self, pid, val):
        record = ConsensusRecord(pid, val)
        assert decode_consensus_record(encode_consensus_record(record)) == record

    @given(
        a=st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
        b=st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
    )
    @settings(max_examples=80)
    def test_injective(self, a, b):
        ra, rb = ConsensusRecord(*a), ConsensusRecord(*b)
        if ra != rb:
            assert encode_consensus_record(ra) != encode_consensus_record(rb)


histories = st.frozensets(
    st.tuples(st.integers(1, 500), st.integers(1, 16)), max_size=5
)


class TestRenamingRecordEncoding:
    def test_empty_record_encodes_to_zero(self):
        assert encode_renaming_record(RenamingRecord()) == 0

    def test_zero_decodes_to_empty_record(self):
        assert decode_renaming_record(0) == RenamingRecord()

    def test_round_trip_with_history(self):
        record = RenamingRecord(101, 103, 2, frozenset({(107, 1), (109, 3)}))
        assert decode_renaming_record(encode_renaming_record(record)) == record

    def test_decode_rejects_non_int(self):
        with pytest.raises(ConfigurationError):
            decode_renaming_record("nope")

    @given(
        pid=st.integers(0, 500),
        val=st.integers(0, 500),
        rnd=st.integers(0, 16),
        history=histories,
    )
    @settings(max_examples=100)
    def test_round_trip_property(self, pid, val, rnd, history):
        record = RenamingRecord(pid, val, rnd, history)
        assert decode_renaming_record(encode_renaming_record(record)) == record

    @given(
        pid=st.integers(1, 50),
        val=st.integers(1, 50),
        rnd=st.integers(1, 8),
        h1=histories,
        h2=histories,
    )
    @settings(max_examples=60)
    def test_distinct_histories_encode_distinctly(self, pid, val, rnd, h1, h2):
        r1 = RenamingRecord(pid, val, rnd, h1)
        r2 = RenamingRecord(pid, val, rnd, h2)
        if r1 != r2:
            assert encode_renaming_record(r1) != encode_renaming_record(r2)
