"""Unit and property tests for register naming assignments."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.naming import (
    ExplicitNaming,
    IdentityNaming,
    RandomNaming,
    RingNaming,
    all_namings_for_tests,
    first_visit_permutation,
    validate_permutation,
)


class TestValidatePermutation:
    def test_accepts_identity(self):
        assert validate_permutation([0, 1, 2], 3) == (0, 1, 2)

    def test_accepts_arbitrary_bijection(self):
        assert validate_permutation((2, 0, 1), 3) == (2, 0, 1)

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            validate_permutation([0, 1], 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            validate_permutation([0, 0, 2], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            validate_permutation([0, 1, 3], 3)


class TestIdentityNaming:
    def test_everyone_agrees(self):
        naming = IdentityNaming()
        assert naming.permutation_for(101, 5) == (0, 1, 2, 3, 4)
        assert naming.permutation_for(999, 5) == (0, 1, 2, 3, 4)


class TestRandomNaming:
    def test_is_a_permutation(self):
        perm = RandomNaming(seed=3).permutation_for(101, 7)
        assert sorted(perm) == list(range(7))

    def test_deterministic_per_pid_and_seed(self):
        naming = RandomNaming(seed=3)
        assert naming.permutation_for(101, 7) == naming.permutation_for(101, 7)

    def test_fresh_instance_same_seed_agrees(self):
        assert RandomNaming(5).permutation_for(101, 6) == RandomNaming(
            5
        ).permutation_for(101, 6)

    def test_different_pids_usually_differ(self):
        naming = RandomNaming(seed=0)
        perms = {naming.permutation_for(pid, 8) for pid in (101, 103, 107, 109)}
        assert len(perms) > 1

    def test_different_seeds_usually_differ(self):
        assert RandomNaming(0).permutation_for(101, 8) != RandomNaming(
            1
        ).permutation_for(101, 8)

    @given(seed=st.integers(0, 10_000), pid=st.integers(1, 10_000), m=st.integers(1, 32))
    @settings(max_examples=60)
    def test_always_a_valid_permutation(self, seed, pid, m):
        perm = RandomNaming(seed).permutation_for(pid, m)
        assert sorted(perm) == list(range(m))


class TestRingNaming:
    def test_offset_zero_is_identity(self):
        naming = RingNaming({101: 0})
        assert naming.permutation_for(101, 4) == (0, 1, 2, 3)

    def test_offset_rotates_the_ring(self):
        naming = RingNaming({101: 2})
        assert naming.permutation_for(101, 4) == (2, 3, 0, 1)

    def test_unlisted_process_starts_at_zero(self):
        naming = RingNaming({101: 2})
        assert naming.permutation_for(999, 4) == (0, 1, 2, 3)

    def test_equispaced_two_processes_on_four_registers(self):
        naming = RingNaming.equispaced((101, 103), 4)
        assert naming.permutation_for(101, 4) == (0, 1, 2, 3)
        assert naming.permutation_for(103, 4) == (2, 3, 0, 1)

    def test_equispaced_distance_is_m_over_l(self):
        # Thm 3.4: "the distance between any two neighbouring initial
        # registers is exactly m/l".
        pids = (101, 103, 107)
        naming = RingNaming.equispaced(pids, 9)
        starts = sorted(naming.permutation_for(pid, 9)[0] for pid in pids)
        gaps = [(b - a) % 9 for a, b in zip(starts, starts[1:] + starts[:1])]
        assert all(gap == 3 for gap in gaps)

    def test_equispaced_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            RingNaming.equispaced((101, 103), 5)

    def test_all_processes_share_ring_direction(self):
        # Consecutive view indices map to consecutive physical indices
        # (mod m) for every process — one shared cyclic order.
        naming = RingNaming.equispaced((101, 103), 6)
        for pid in (101, 103):
            perm = naming.permutation_for(pid, 6)
            assert all(
                (perm[j + 1] - perm[j]) % 6 == 1 for j in range(5)
            )


class TestExplicitNaming:
    def test_uses_supplied_permutation(self):
        naming = ExplicitNaming({101: (2, 0, 1)})
        assert naming.permutation_for(101, 3) == (2, 0, 1)

    def test_falls_back_to_identity(self):
        naming = ExplicitNaming({101: (2, 0, 1)})
        assert naming.permutation_for(103, 3) == (0, 1, 2)

    def test_invalid_permutation_rejected_at_use(self):
        naming = ExplicitNaming({101: (0, 0, 1)})
        with pytest.raises(ConfigurationError):
            naming.permutation_for(101, 3)


class TestFirstVisitPermutation:
    def test_target_comes_first(self):
        assert first_visit_permutation(3, 5) == (3, 0, 1, 2, 4)

    def test_target_zero_is_identity(self):
        assert first_visit_permutation(0, 4) == (0, 1, 2, 3)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ConfigurationError):
            first_visit_permutation(5, 5)

    @given(m=st.integers(1, 40), data=st.data())
    @settings(max_examples=40)
    def test_always_valid_permutation(self, m, data):
        target = data.draw(st.integers(0, m - 1))
        perm = first_visit_permutation(target, m)
        assert sorted(perm) == list(range(m))
        assert perm[0] == target


class TestAllNamingsForTests:
    def test_produces_identity_random_and_ring(self):
        namings = all_namings_for_tests((101, 103), 4)
        kinds = {type(n).__name__ for n in namings}
        assert {"IdentityNaming", "RandomNaming", "RingNaming"} <= kinds

    def test_handles_non_divisible_sizes(self):
        namings = all_namings_for_tests((101, 103, 107), 5)
        assert len(namings) >= 3
