#!/usr/bin/env python3
"""Tour of the paper's negative results, reproduced mechanically.

Four demonstrations:

1. exhaustive model checking of Figure 1 (Theorem 3.2) — every reachable
   state of the m=3 instance is enumerated and checked;
2. the Theorem 3.4 lockstep symmetry attack on Figure 1 with even m —
   the run provably cycles forever without a critical-section entry;
3. the Theorem 6.2 covering construction against a naive lock — the
   constructed run rho ends with two processes in the critical section;
4. the Theorem 6.3 covering construction against Figure 2 squeezed into
   n-1 registers — the constructed run ends with two different decisions.

Run with:  python examples/verify_theorems.py
"""

from repro import AnonymousConsensus, AnonymousMutex, System, explore
from repro.lowerbounds import (
    NaiveTestAndSetLock,
    demonstrate_consensus_space_bound,
    demonstrate_mutex_impossibility,
    run_symmetry_attack,
)
from repro.runtime.exploration import mutual_exclusion_invariant


def demo_exhaustive() -> None:
    print("== 1. Exhaustive verification of Figure 1 (Theorem 3.2)")
    system = System(AnonymousMutex(m=3, cs_visits=1), [101, 103], record_trace=False)
    result = explore(system, mutual_exclusion_invariant)
    print(f"   {result.summary()}")
    assert result.complete and result.ok and result.stuck_states == 0
    print("   every reachable state satisfies mutual exclusion; no state "
          "is stuck\n")


def demo_symmetry_attack() -> None:
    print("== 2. Theorem 3.4 lockstep attack: Figure 1 with even m=4")
    result = run_symmetry_attack(
        AnonymousMutex(m=4, unsafe_allow_any_m=True), [101, 103]
    )
    print(f"   {result.summary()}")
    print(f"   states stayed symmetric at every round: "
          f"{result.symmetric_throughout}")
    assert result.violation == "deadlock-freedom"
    print("   even m admits the equispaced ring placement; the symmetric "
          "run starves forever\n")


def demo_mutex_covering() -> None:
    print("== 3. Theorem 6.2 covering construction vs a naive lock")
    report = demonstrate_mutex_impossibility(lambda: NaiveTestAndSetLock())
    print(f"   {report.summary()}")
    print(f"   indistinguishability after block write verified exactly: "
          f"{report.indistinguishability_verified}")
    assert report.branch == "rho-violation"
    print("   one covering process erased the owner's trace; both entered "
          "the critical section\n")


def demo_consensus_covering() -> None:
    print("== 4. Theorem 6.3 covering construction vs Figure 2 with n-1 "
          "registers")
    report = demonstrate_consensus_space_bound(
        lambda: AnonymousConsensus(n=4, registers=3)
    )
    print(f"   {report.summary()}")
    print(f"   q decided {report.q_outcome!r}; covering processes decided "
          f"{ {p: v for p, v in report.p_outcomes.items() if v is not None} }")
    assert report.branch == "rho-violation"
    print("   below 2n-1 registers the block write erases the first "
          "decision entirely\n")


if __name__ == "__main__":
    demo_exhaustive()
    demo_symmetry_attack()
    demo_mutex_covering()
    demo_consensus_covering()
    print("All four negative results reproduced mechanically.")
