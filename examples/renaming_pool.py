#!/usr/bin/env python3
"""A worker pool that self-assigns compact slot numbers via renaming.

Scenario: ``k`` workers arrive with sparse 64-bit identifiers and need
exclusive rows in a small, densely indexed resource table (statistics
slots, stack regions, log partitions...).  Perfect adaptive renaming is
exactly this: k participants acquire distinct names from {1..k} — and
the Figure 3 algorithm does it over anonymous registers, so the workers
need not even agree on how the shared array is numbered.

The demo also exercises *adaptivity* (Theorem 5.3): the instance is
dimensioned for 8 workers, but only the workers that actually show up
consume slots — 3 participants use slots {1, 2, 3} exactly.

Run with:  python examples/renaming_pool.py
"""

from repro import AnonymousRenaming, RandomNaming, System
from repro.runtime import StagedObstructionAdversary
from repro.spec import NameRangeChecker, UniqueNamesChecker


class ResourceTable:
    """A dense table indexed by the compact names renaming hands out."""

    def __init__(self, capacity: int):
        self.rows = [None] * capacity

    def claim(self, slot: int, owner: int) -> None:
        assert self.rows[slot - 1] is None, f"slot {slot} double-claimed!"
        self.rows[slot - 1] = owner


def run_pool(all_workers, active_workers, seed: int) -> None:
    n = len(all_workers)
    k = len(active_workers)
    print(f"-- pool dimensioned for n={n}, {k} workers arrive: {active_workers}")

    system = System(
        AnonymousRenaming(n=n),
        active_workers,
        naming=RandomNaming(seed=seed),
    )
    trace = system.run(
        StagedObstructionAdversary(prefix_steps=40 * k, seed=seed),
        max_steps=1_000_000,
    )
    UniqueNamesChecker().check(trace)
    NameRangeChecker(bound=k).check(trace)  # adaptivity: {1..k}, not {1..n}

    table = ResourceTable(capacity=n)
    for worker, slot in trace.outputs.items():
        table.claim(slot, worker)
        print(f"   worker {worker:>10} acquired slot {slot}")
    used = sum(1 for row in table.rows if row is not None)
    print(f"   table occupancy: {used}/{n} rows "
          f"(slots 1..{k} used — adaptive)\n")


def main() -> None:
    all_workers = [
        971, 6271, 175261, 3021377, 2147483647, 99990001, 67280421, 310739,
    ]
    # Full house: all 8 workers compete for the 8 slots.
    run_pool(all_workers, all_workers, seed=1)
    # Quiet day: only 3 arrive; adaptivity keeps the table compact.
    run_pool(all_workers, all_workers[:3], seed=2)
    # A single worker: always gets slot 1.
    run_pool(all_workers, all_workers[:1], seed=3)
    print("renaming pool verified: unique compact slots, adaptive usage.")


if __name__ == "__main__":
    main()
