#!/usr/bin/env python3
"""Quickstart: the three memory-anonymous algorithms in one sitting.

Runs each of the paper's algorithms on the deterministic simulator under
an adversarial register naming (every process privately numbers the
registers differently) and prints what happened:

* Figure 1 — two-process mutual exclusion with 3 anonymous registers;
* Figure 2 — three-process obstruction-free consensus with 5 registers;
* Figure 3 — four-process adaptive perfect renaming with 7 registers.

Run with:  python examples/quickstart.py
"""

from repro import (
    AnonymousConsensus,
    AnonymousMutex,
    AnonymousRenaming,
    RandomNaming,
    System,
)
from repro.runtime import RandomAdversary, StagedObstructionAdversary
from repro.spec import (
    AgreementChecker,
    MutualExclusionChecker,
    UniqueNamesChecker,
    ValidityChecker,
)


def demo_mutex() -> None:
    """Figure 1: mutual exclusion without agreeing on register names."""
    print("== Figure 1: memory-anonymous mutual exclusion (m=3, 2 processes)")
    # Process ids are arbitrary positive integers — no {1..n} assumption.
    system = System(
        AnonymousMutex(m=3, cs_visits=2),
        [2001, 7919],
        naming=RandomNaming(seed=42),  # adversary scrambles the numbering
    )
    trace = system.run(RandomAdversary(seed=7), max_steps=100_000)
    MutualExclusionChecker().check(trace)  # raises if the theorem failed
    print(f"   run of {len(trace)} events, stop reason: {trace.stop_reason}")
    print(f"   critical-section entries: {trace.critical_section_entries()}")
    print(f"   completed visits per process: {trace.outputs}")
    print("   mutual exclusion verified on the trace\n")


def demo_consensus() -> None:
    """Figure 2: consensus among processes that share no register names."""
    print("== Figure 2: memory-anonymous consensus (n=3, 2n-1=5 registers)")
    inputs = {2001: "apple", 7919: "banana", 104729: "cherry"}
    system = System(
        AnonymousConsensus(n=3), inputs, naming=RandomNaming(seed=1)
    )
    # Obstruction-freedom: after some contention, give each process a
    # solo stretch; everyone then decides.
    trace = system.run(
        StagedObstructionAdversary(prefix_steps=60, seed=3), max_steps=200_000
    )
    AgreementChecker().check(trace)
    ValidityChecker(inputs).check(trace)
    print(f"   inputs:    {inputs}")
    print(f"   decisions: {trace.outputs}")
    print("   agreement + validity verified on the trace\n")


def demo_renaming() -> None:
    """Figure 3: shrink a huge name space to {1..n} without agreement."""
    print("== Figure 3: adaptive perfect renaming (n=4, 2n-1=7 registers)")
    old_names = [15485863, 32452843, 49979687, 67867967]
    system = System(
        AnonymousRenaming(n=4), old_names, naming=RandomNaming(seed=9)
    )
    trace = system.run(
        StagedObstructionAdversary(prefix_steps=80, seed=5), max_steps=500_000
    )
    UniqueNamesChecker().check(trace)
    print("   old name        -> new name")
    for old in old_names:
        print(f"   {old:<15} -> {trace.outputs[old]}")
    print("   uniqueness verified on the trace\n")


if __name__ == "__main__":
    demo_mutex()
    demo_consensus()
    demo_renaming()
    print("All three algorithms ran correctly with scrambled register names.")
