#!/usr/bin/env python3
"""Leader election among real threads with scrambled register names.

Scenario (the paper's §1 motivation, concretely): a set of worker threads
is spawned with arbitrary, non-contiguous identifiers (think: random
request ids or PIDs).  They share a small array of registers, but the
platform gives each worker a *different* numbering of those registers —
for example because each worker mapped the shared segment through its own
allocator.  Nothing is agreed in advance except the registers' initial
zero state.

The workers still elect a single coordinator, using the §4 construction:
Figure 2's consensus with each worker's own identifier as its input.
Obstruction-freedom is turned into practical termination by randomized
backoff (the deployment story of the paper's reference [15]).

Run with:  python examples/leader_election.py
"""

import random

from repro import AnonymousElection, RandomNaming, elected_leader
from repro.runtime import run_threaded_with_backoff


def main() -> None:
    rng = random.Random(2017)
    # Arbitrary worker ids from a huge name space (no {1..n} agreement).
    worker_ids = sorted(rng.sample(range(10_000, 10_000_000), 5))
    print(f"workers: {worker_ids}")
    print(f"shared registers: {2 * len(worker_ids) - 1} (2n-1), "
          "each worker numbers them differently\n")

    result = run_threaded_with_backoff(
        AnonymousElection(n=len(worker_ids)),
        worker_ids,
        naming=RandomNaming(seed=2017),  # per-worker scrambled numbering
        timeout=60.0,
    )

    if not result.ok:
        raise SystemExit(
            f"election did not complete: timed_out={result.timed_out}, "
            f"errors={result.errors}"
        )

    leader = elected_leader(result.outputs)
    print("votes (every worker must report the same winner):")
    for worker, vote in sorted(result.outputs.items()):
        marker = "  <-- elected coordinator" if worker == leader else ""
        print(f"   worker {worker}: elected {vote}{marker}")
    print(f"\nsteps per worker: { {w: result.steps[w] for w in sorted(result.steps)} }")
    print(f"wall-clock: {result.duration:.3f}s (threads + backoff)")

    assert len(set(result.outputs.values())) == 1, "agreement violated!"
    assert leader in worker_ids, "leader is not a participant!"
    print("\nelection verified: unanimous winner, drawn from the participants.")


if __name__ == "__main__":
    main()
