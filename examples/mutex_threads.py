#!/usr/bin/env python3
"""Two real threads guard a shared counter with the Figure 1 lock.

The counter increment below is deliberately non-atomic (read, compute,
write with a forced thread switch in between).  Without a lock, the two
workers lose updates; bracketed by the Figure 1 entry/exit sections they
do not — even though the two threads *disagree about which register is
which* (one numbers the array forward, the other backward).

This demo drives the automaton manually to splice application work into
the critical section, showing how the library's explicit state machines
embed into ordinary thread code.

Run with:  python examples/mutex_threads.py
"""

import threading
import time

from repro import AnonymousMutex, ExplicitNaming, System
from repro.runtime.ops import CritOp, EnterCritOp, ExitCritOp, ReadOp, WriteOp

INCREMENTS_PER_WORKER = 200


class SharedCounter:
    """A racy counter: increments lose updates unless serialised."""

    def __init__(self):
        self.value = 0

    def racy_increment(self):
        snapshot = self.value
        time.sleep(0)  # encourage a thread switch inside the window
        self.value = snapshot + 1


def worker(system: System, pid: int, counter: SharedCounter) -> None:
    """Run the Figure 1 automaton; increment the counter while in the CS."""
    automaton = system.automata[pid]
    view = system.memory.view(pid)
    state = automaton.initial_state()
    while not automaton.is_halted(state):
        op = automaton.next_op(state)
        if isinstance(op, ReadOp):
            result = view.read(op.index)
        elif isinstance(op, WriteOp):
            view.write(op.index, op.value)
            result = None
        else:
            # EnterCritOp / CritOp / ExitCritOp: the protected region.
            if isinstance(op, CritOp):
                counter.racy_increment()
            result = None
        state = automaton.apply(state, op, result)


def run(with_lock: bool) -> int:
    counter = SharedCounter()
    if with_lock:
        naming = ExplicitNaming({11: (0, 1, 2), 13: (2, 1, 0)})
        system = System(
            AnonymousMutex(m=3, cs_visits=INCREMENTS_PER_WORKER),
            [11, 13],
            naming=naming,
            locked=True,
        )
        threads = [
            threading.Thread(target=worker, args=(system, pid, counter))
            for pid in (11, 13)
        ]
    else:
        def racy():
            for _ in range(INCREMENTS_PER_WORKER):
                counter.racy_increment()

        threads = [threading.Thread(target=racy) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return counter.value


def main() -> None:
    expected = 2 * INCREMENTS_PER_WORKER
    unlocked = run(with_lock=False)
    locked = run(with_lock=True)
    print(f"expected increments:      {expected}")
    print(f"without a lock:           {unlocked}"
          + ("   (updates lost!)" if unlocked < expected else ""))
    print(f"with the Figure 1 lock:   {locked}")
    assert locked == expected, "the anonymous lock failed to serialise!"
    print("\nFigure 1 serialised the critical sections across real threads,")
    print("with the two threads numbering the registers in opposite orders.")


if __name__ == "__main__":
    main()
