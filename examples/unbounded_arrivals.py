#!/usr/bin/env python3
"""Consensus when you don't know how many will show up.

Theorem 6.3 says this is *impossible* over anonymous registers; with
named registers it is possible even for unbounded concurrency (the
paper's reference [25]).  This example runs our executable version of
the possibility side — the commit-adopt ladder — on three waves of
arriving processes, all against the **same fixed register layout**:
nothing about the memory depends on how many processes exist.

It then flips to the impossibility side: the same "more processes than
you planned for" situation over *anonymous* registers, driven through
the Theorem 6.3 covering construction, ends in an agreement violation.

Run with:  python examples/unbounded_arrivals.py
"""

from repro.core.consensus import AnonymousConsensus
from repro.extensions.unbounded_consensus import UnboundedConsensus
from repro.lowerbounds.consensus_space import demonstrate_consensus_space_bound
from repro.runtime import StagedObstructionAdversary, System
from repro.spec.consensus_spec import AgreementChecker, ValidityChecker


def named_side() -> None:
    print("== Named registers: one layout, any number of arrivals")
    algorithm = UnboundedConsensus(domain=("commit", "abort"))
    print(f"   fixed layout: {algorithm.register_count()} named registers "
          f"({algorithm.max_rounds} ladder rounds x 4)\n")
    for wave, count in enumerate((2, 5, 8), start=1):
        inputs = {
            1000 * wave + k: ("commit" if k % 3 else "abort")
            for k in range(count)
        }
        system = System(algorithm, inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=25 * count, seed=wave),
            max_steps=500_000,
        )
        AgreementChecker().check(trace)
        ValidityChecker(inputs).check(trace)
        decision = next(iter(trace.decided().values()))
        print(f"   wave {wave}: {count} processes arrived, all decided "
              f"{decision!r} in {len(trace)} steps")
    print()


def anonymous_side() -> None:
    print("== Anonymous registers: the same surprise is fatal (Thm 6.3)")
    report = demonstrate_consensus_space_bound(
        lambda: AnonymousConsensus(n=4, registers=3),
        q_input="commit",
        p_input="abort",
    )
    print(f"   {report.summary()}")
    assert report.branch == "rho-violation"
    print("   the covering processes erased the first decision and decided "
          "the other way\n")


if __name__ == "__main__":
    named_side()
    anonymous_side()
    print("Corollary 6.4, both halves: named registers handle unknown "
          "arrivals;\nanonymous registers provably cannot.")
